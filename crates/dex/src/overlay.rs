//! The virtual d-regular multigraph underneath DEX.
//!
//! DEX maintains its expander on *virtual* nodes connected by *ports*: every
//! virtual node owns exactly `d` ports, and an edge is a pairing of two ports
//! (possibly of the same virtual node — self-loops are legal and count twice
//! toward degree). All topology changes are port rewirings:
//!
//! - [`Overlay::split`] hands half of a node's ports to a fresh node and ties
//!   the two halves together with `d/2` parallel edges (insertions);
//! - [`Overlay::merge`] contracts one node into another and *splices* the
//!   excess port pairs — `(a, m), (m, b)` becomes `(a, b)` — so every other
//!   node's degree is untouched (deletions);
//! - [`Overlay::ensure_connected`] cross-connects components with a
//!   degree-preserving 2-swap.
//!
//! Because `d` is even, every operation leaves every virtual node at degree
//! exactly `d`, and each component is Eulerian (all degrees even), hence
//! bridgeless — which is what makes the 2-swap in `ensure_connected` safe:
//! removing one edge from a component can never disconnect it.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Raw virtual-node identifier.
pub(crate) type Vid = u64;

/// One endpoint slot of an edge: `(edge id, slot)` where slot 0/1 selects the
/// first/second endpoint. A self-loop contributes both slots of one edge.
type PortRef = (u64, u8);

/// A `d`-regular virtual multigraph under port-pairing dynamics.
#[derive(Clone, Debug)]
pub(crate) struct Overlay {
    /// Even port count every virtual node holds at every event boundary.
    degree: usize,
    /// Edge id → endpoint pair. Self-loops store the same vid twice.
    edges: BTreeMap<u64, (Vid, Vid)>,
    /// Vid → sorted edge ids touching it (self-loops listed twice).
    incident: BTreeMap<Vid, Vec<u64>>,
    next_vid: Vid,
    next_eid: u64,
    /// Running count of port rewirings (each edge add/remove/redirect moves
    /// ports); the engine reads deltas of this as its message-cost model.
    port_ops: u64,
}

impl Overlay {
    /// Builds `m` virtual nodes wired as the union of `d/2` seeded Hamilton
    /// cycles (the classic constant-degree expander construction). `m = 1`
    /// degenerates to `d/2` self-loops, `m = 2` to `d` parallel edges.
    pub(crate) fn bootstrap(degree: usize, m: usize, rng: &mut StdRng) -> Self {
        assert!(
            degree >= 2 && degree % 2 == 0,
            "DEX degree must be even >= 2"
        );
        let mut ov = Overlay {
            degree,
            edges: BTreeMap::new(),
            incident: BTreeMap::new(),
            next_vid: 0,
            next_eid: 0,
            port_ops: 0,
        };
        let vids: Vec<Vid> = (0..m as Vid).collect();
        for &v in &vids {
            ov.incident.insert(v, Vec::new());
        }
        ov.next_vid = m as Vid;
        if m == 0 {
            return ov;
        }
        let mut perm = vids;
        for _ in 0..degree / 2 {
            perm.shuffle(rng);
            for i in 0..m {
                ov.add_edge(perm[i], perm[(i + 1) % m]);
            }
        }
        ov
    }

    pub(crate) fn vnode_count(&self) -> usize {
        self.incident.len()
    }

    pub(crate) fn port_ops(&self) -> u64 {
        self.port_ops
    }

    /// Sorted virtual-node ids.
    pub(crate) fn vids(&self) -> impl Iterator<Item = Vid> + '_ {
        self.incident.keys().copied()
    }

    /// Endpoint pairs of all edges (for projection rebuilds).
    pub(crate) fn edge_endpoints(&self) -> impl Iterator<Item = (Vid, Vid)> + '_ {
        self.edges.values().copied()
    }

    /// Distinct peer vids of `w`, ascending (self excluded).
    pub(crate) fn peer_vids(&self, w: Vid) -> Vec<Vid> {
        let mut peers: Vec<Vid> = self
            .occurrences(w)
            .into_iter()
            .map(|(eid, slot)| self.other_end(eid, slot))
            .filter(|&p| p != w)
            .collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    }

    /// Whether at least one edge joins `a` and `b` directly.
    pub(crate) fn adjacent(&self, a: Vid, b: Vid) -> bool {
        let small = if self.incident[&a].len() <= self.incident[&b].len() {
            a
        } else {
            b
        };
        self.incident[&small].iter().any(|eid| {
            let (x, y) = self.edges[eid];
            (x == a && y == b) || (x == b && y == a)
        })
    }

    /// A brand-new virtual node wired only to itself: `d/2` self-loops.
    /// Used when the very first real node joins an empty network.
    pub(crate) fn fresh_isolated(&mut self) -> Vid {
        let v = self.alloc_vid();
        for _ in 0..self.degree / 2 {
            self.add_edge(v, v);
        }
        v
    }

    /// Splits `w`: a fresh node `w2` takes over half of `w`'s ports, and the
    /// two halves are tied back together with `d/2` parallel `w`–`w2` edges.
    /// Both end at degree exactly `d`; no other node's degree changes, and
    /// connectivity is preserved (the parallel edges bridge the halves).
    pub(crate) fn split(&mut self, w: Vid) -> Vid {
        let w2 = self.alloc_vid();
        let half = self.degree / 2;
        let occ = self.occurrences(w);
        debug_assert_eq!(occ.len(), self.degree);
        for &(eid, slot) in occ.iter().take(half) {
            self.redirect(eid, slot, w2);
        }
        for _ in 0..half {
            self.add_edge(w, w2);
        }
        w2
    }

    /// Merges `absorb` into `keep`: `keep` takes over every port of `absorb`
    /// (edges between the two become self-loops at `keep`), then sheds the
    /// `d` excess ports — self-loops first (each frees two ports), then by
    /// splicing pairs `(keep, a), (keep, b)` into a direct `(a, b)` edge.
    /// Every node other than the two merged ends at its original degree.
    pub(crate) fn merge(&mut self, keep: Vid, absorb: Vid) {
        assert_ne!(keep, absorb);
        for (eid, slot) in self.occurrences(absorb) {
            self.redirect(eid, slot, keep);
        }
        let gone = self.incident.remove(&absorb);
        debug_assert!(gone.is_some_and(|l| l.is_empty()));

        let mut need = self.degree; // deg(keep) is now 2d; shed down to d.
        while need > 0 {
            let Some(eid) = self.self_loop_at(keep) else {
                break;
            };
            self.remove_edge(eid);
            need -= 2;
        }
        while need > 0 {
            // No self-loops remain at `keep`, so every occurrence is a
            // distinct edge to some other node. Pair the lexicographically
            // first and last peers to spread the splice.
            let mut occ: Vec<(Vid, u64, u8)> = self
                .occurrences(keep)
                .into_iter()
                .map(|(eid, slot)| (self.other_end(eid, slot), eid, slot))
                .collect();
            occ.sort_unstable();
            let (a, e1, _) = occ[0];
            let (b, e2, _) = occ[occ.len() - 1];
            debug_assert_ne!(e1, e2);
            self.remove_edge(e1);
            self.remove_edge(e2);
            self.add_edge(a, b);
            need -= 2;
        }
    }

    /// Drops every edge and node (the network emptied out).
    pub(crate) fn clear(&mut self) {
        self.port_ops += 2 * self.edges.len() as u64;
        self.edges.clear();
        self.incident.clear();
    }

    /// Reconnects the multigraph if merges left it in pieces, using
    /// degree-preserving 2-swaps: take one edge `(a1, b1)` from the grown
    /// component and one edge `(a2, b2)` from a stray component, and replace
    /// them with the cross pair `(a1, a2), (b1, b2)`. All degrees are even at
    /// the call boundary, so each component is bridgeless and losing one edge
    /// cannot disconnect it. Returns `true` if any rewiring happened.
    pub(crate) fn ensure_connected(&mut self) -> bool {
        let comps = self.components();
        if comps.len() <= 1 {
            return false;
        }
        let mut main: Vec<Vid> = comps[0].clone();
        for comp in &comps[1..] {
            let e1 = self.smallest_edge_of(&main);
            let e2 = self.smallest_edge_of(comp);
            let (a1, b1) = self.edges[&e1];
            let (a2, b2) = self.edges[&e2];
            self.remove_edge(e1);
            self.remove_edge(e2);
            self.add_edge(a1, a2);
            self.add_edge(b1, b2);
            main.extend_from_slice(comp);
        }
        true
    }

    /// Panics unless every virtual node holds exactly `d` ports and the
    /// edge/incidence tables mirror each other. Test/debug aid.
    pub(crate) fn assert_invariants(&self) {
        let mut counts: BTreeMap<Vid, usize> = self.vids().map(|v| (v, 0)).collect();
        for (&eid, &(a, b)) in &self.edges {
            *counts
                .get_mut(&a)
                .unwrap_or_else(|| panic!("edge {eid} endpoint {a} unknown")) += 1;
            *counts
                .get_mut(&b)
                .unwrap_or_else(|| panic!("edge {eid} endpoint {b} unknown")) += 1;
        }
        for (v, list) in &self.incident {
            assert_eq!(
                list.len(),
                self.degree,
                "vnode {v} holds {} ports, want {}",
                list.len(),
                self.degree
            );
            assert_eq!(counts[v], self.degree, "incidence/edge mismatch at {v}");
            assert!(list.windows(2).all(|w| w[0] <= w[1]), "unsorted incidence");
            for eid in list {
                let (a, b) = self.edges[eid];
                assert!(a == *v || b == *v, "stale incidence {eid} at {v}");
            }
        }
    }

    /// Picks a uniformly random virtual node (seeded). DEX proper samples via
    /// random walks; with global determinism available we sample directly.
    pub(crate) fn random_vid(&self, rng: &mut StdRng) -> Option<Vid> {
        if self.incident.is_empty() {
            return None;
        }
        let k = rng.random_range(0..self.incident.len());
        self.vids().nth(k)
    }

    // -- internals ---------------------------------------------------------

    fn alloc_vid(&mut self) -> Vid {
        let v = self.next_vid;
        self.next_vid += 1;
        self.incident.insert(v, Vec::new());
        v
    }

    fn add_edge(&mut self, a: Vid, b: Vid) -> u64 {
        let eid = self.next_eid;
        self.next_eid += 1;
        self.edges.insert(eid, (a, b));
        Self::insert_sorted(self.incident.get_mut(&a).expect("endpoint"), eid);
        Self::insert_sorted(self.incident.get_mut(&b).expect("endpoint"), eid);
        self.port_ops += 2;
        eid
    }

    fn remove_edge(&mut self, eid: u64) {
        let (a, b) = self.edges.remove(&eid).expect("edge");
        Self::remove_one(self.incident.get_mut(&a).expect("endpoint"), eid);
        Self::remove_one(self.incident.get_mut(&b).expect("endpoint"), eid);
        self.port_ops += 2;
    }

    /// Rewires one endpoint slot of `eid` to `to`.
    fn redirect(&mut self, eid: u64, slot: u8, to: Vid) {
        let ends = self.edges.get_mut(&eid).expect("edge");
        let from = if slot == 0 { ends.0 } else { ends.1 };
        if slot == 0 {
            ends.0 = to;
        } else {
            ends.1 = to;
        }
        Self::remove_one(self.incident.get_mut(&from).expect("endpoint"), eid);
        Self::insert_sorted(self.incident.get_mut(&to).expect("endpoint"), eid);
        self.port_ops += 1;
    }

    /// Every port of `w` as `(edge id, slot)`, ascending by edge id; a
    /// self-loop yields both slots.
    fn occurrences(&self, w: Vid) -> Vec<PortRef> {
        let list = &self.incident[&w];
        let mut out = Vec::with_capacity(list.len());
        let mut i = 0;
        while i < list.len() {
            let eid = list[i];
            let (a, b) = self.edges[&eid];
            if a == w {
                out.push((eid, 0));
            }
            if b == w {
                out.push((eid, 1));
            }
            // Skip the duplicate incidence entry a self-loop carries.
            i += if a == w && b == w { 2 } else { 1 };
        }
        out
    }

    fn other_end(&self, eid: u64, slot: u8) -> Vid {
        let (a, b) = self.edges[&eid];
        if slot == 0 {
            b
        } else {
            a
        }
    }

    fn self_loop_at(&self, w: Vid) -> Option<u64> {
        self.incident[&w].iter().copied().find(|eid| {
            let (a, b) = self.edges[eid];
            a == w && b == w
        })
    }

    fn smallest_edge_of(&self, comp: &[Vid]) -> u64 {
        comp.iter()
            .filter_map(|v| self.incident[v].first().copied())
            .min()
            .expect("component with edgeless vnode (degree 0 < d)")
    }

    /// Connected components over vids, each sorted, ordered by smallest vid.
    fn components(&self) -> Vec<Vec<Vid>> {
        let mut seen: BTreeMap<Vid, bool> = self.vids().map(|v| (v, false)).collect();
        let mut comps = Vec::new();
        for root in self.vids().collect::<Vec<_>>() {
            if seen[&root] {
                continue;
            }
            let mut comp = vec![root];
            seen.insert(root, true);
            let mut head = 0;
            while head < comp.len() {
                let v = comp[head];
                head += 1;
                for eid in &self.incident[&v] {
                    let (a, b) = self.edges[eid];
                    for u in [a, b] {
                        if !seen[&u] {
                            seen.insert(u, true);
                            comp.push(u);
                        }
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    fn insert_sorted(list: &mut Vec<u64>, eid: u64) {
        let pos = list.partition_point(|&e| e < eid);
        list.insert(pos, eid);
    }

    fn remove_one(list: &mut Vec<u64>, eid: u64) {
        let pos = list.partition_point(|&e| e < eid);
        debug_assert!(list.get(pos) == Some(&eid));
        list.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn bootstrap_is_regular_and_connected() {
        for m in [1usize, 2, 3, 5, 24] {
            let ov = Overlay::bootstrap(8, m, &mut rng());
            ov.assert_invariants();
            assert_eq!(ov.vnode_count(), m);
            assert_eq!(ov.components().len(), 1, "m={m}");
        }
    }

    #[test]
    fn split_preserves_regularity_and_connectivity() {
        let mut ov = Overlay::bootstrap(6, 4, &mut rng());
        for _ in 0..20 {
            let w = ov.vids().next().unwrap();
            ov.split(w);
            ov.assert_invariants();
            assert_eq!(ov.components().len(), 1);
        }
        assert_eq!(ov.vnode_count(), 24);
    }

    #[test]
    fn merge_preserves_regularity() {
        let mut ov = Overlay::bootstrap(8, 16, &mut rng());
        while ov.vnode_count() > 1 {
            let vids: Vec<Vid> = ov.vids().collect();
            ov.merge(vids[0], vids[1]);
            ov.assert_invariants();
            ov.ensure_connected();
            ov.assert_invariants();
            assert_eq!(ov.components().len(), 1);
        }
    }

    #[test]
    fn merge_down_to_self_loops() {
        // Merging everything into one vnode must end at d/2 self-loops.
        let mut ov = Overlay::bootstrap(4, 6, &mut rng());
        let vids: Vec<Vid> = ov.vids().collect();
        for &v in &vids[1..] {
            ov.merge(vids[0], v);
            ov.assert_invariants();
        }
        assert_eq!(ov.vnode_count(), 1);
        assert_eq!(ov.edge_endpoints().count(), 2);
    }

    #[test]
    fn ensure_connected_joins_components() {
        // Two disjoint bootstraps glued into one Overlay are impossible to
        // build through the public API, so simulate the post-merge hazard:
        // split far apart then merge until a component could strand.
        let mut ov = Overlay::bootstrap(4, 12, &mut rng());
        let mut r = rng();
        for step in 0..200 {
            let vids: Vec<Vid> = ov.vids().collect();
            if vids.len() > 2 && step % 3 != 0 {
                let i = r.random_range(0..vids.len());
                let j = (i + 1 + r.random_range(0..vids.len() - 1)) % vids.len();
                ov.merge(vids[i.min(j)], vids[i.max(j)]);
            } else {
                let i = r.random_range(0..vids.len());
                ov.split(vids[i]);
            }
            ov.ensure_connected();
            ov.assert_invariants();
            assert_eq!(ov.components().len(), 1, "step {step}");
        }
    }

    #[test]
    fn port_ops_monotone() {
        let mut ov = Overlay::bootstrap(4, 4, &mut rng());
        let before = ov.port_ops();
        let w = ov.vids().next().unwrap();
        ov.split(w);
        assert!(ov.port_ops() > before);
    }
}
