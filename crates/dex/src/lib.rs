//! # xheal-dex
//!
//! A deterministic implementation of **DEX: Self-healing Expanders**
//! (Pandurangan, Robinson & Trehan; see PAPERS.md) as the workspace's tenth
//! [`HealingEngine`] — the natural rival to Xheal. Where Xheal guarantees a
//! constant-*factor* degree increase by patching deletions with expander
//! clouds, DEX maintains a constant-*degree* expander outright by running the
//! network on a virtual-node overlay:
//!
//! - every real node hosts between 1 and `max_load` **virtual nodes**;
//! - the virtual nodes form a `d`-regular multigraph of port pairings
//!   (the private `overlay` module);
//! - an **insertion** either takes over a spare virtual node from the most
//!   loaded host or *splits* an existing virtual node in two;
//! - a **deletion** re-homes the victim's virtual nodes onto neighboring
//!   hosts and *merges* virtual nodes wherever a host exceeds `max_load`,
//!   splicing excess port pairs so no other node's degree moves.
//!
//! The real network [`Dex::graph`] is the projection of the overlay: real
//! nodes `x != y` are connected iff some virtual node hosted by `x` has a
//! port paired with one hosted by `y`. Since a real node hosts at most
//! `max_load` virtual nodes of degree `d`, its real degree is **hard-bounded
//! by `max_load * d`** ([`Dex::degree_bound`]) no matter what the adversary
//! does — the property the arena harness asserts in-process.
//!
//! Projection edges are emitted as *colored* [`TopologyDelta`]s under the
//! reserved [`DEX_CLOUD`] color: DEX rebuilds topology instead of preserving
//! adversarial edges, so none of its edges belong to the black reference
//! graph `G'` (the monitor's degree-increase and stretch scoring stay
//! well-defined because the workload runner tracks `G'` from the event
//! stream, independent of any engine).
//!
//! Determinism: all placement and sampling decisions come from one seeded
//! [`StdRng`] plus ordered (`BTreeMap`) iteration, so identical event
//! sequences against identical seeds reproduce identical graphs — pinned by
//! proptest in the integration suite.
//!
//! # Examples
//!
//! ```
//! use xheal_core::{Event, HealingEngine};
//! use xheal_dex::{Dex, DexConfig};
//! use xheal_graph::{components, generators, NodeId};
//!
//! let mut dex = Dex::new(&generators::cycle(16), DexConfig::default());
//! dex.apply(&Event::Delete { node: NodeId::new(3) })?;
//! assert!(components::is_connected(dex.graph()));
//! let bound = dex.degree_bound();
//! assert!(dex.graph().node_vec().iter().all(|&v| dex.graph().degree(v).unwrap() <= bound));
//! # Ok::<(), xheal_core::HealError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod overlay;

use std::collections::{BTreeMap, BTreeSet};

use overlay::{Overlay, Vid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xheal_core::{
    BatchReport, BatchVictim, DeletionReport, DistCost, Event, HealCase, HealError, HealingEngine,
    Outcome, SinkRegistry, TopologyDelta, TopologySink,
};
use xheal_graph::{CloudColor, Graph, NodeId};
use xheal_trace::{hook, Layer, SharedTracer};

/// The cloud color all DEX overlay edges carry: DEX owns its whole topology,
/// so one reserved color marks every projected edge as healer-installed
/// (never part of the black reference graph `G'`).
pub const DEX_CLOUD: CloudColor = CloudColor::new(0xDECAF);

/// Tuning knobs for [`Dex`].
#[derive(Clone, Copy, Debug)]
pub struct DexConfig {
    /// Port count of every virtual node — must be even and at least 2.
    /// Higher `d` buys expansion at the price of degree.
    pub degree: usize,
    /// Most virtual nodes one real node may host (at least 1). The hard
    /// real-degree bound is `max_load * degree`.
    pub max_load: usize,
    /// Seed for all placement/sampling decisions.
    pub seed: u64,
}

impl Default for DexConfig {
    fn default() -> Self {
        DexConfig {
            degree: 8,
            max_load: 3,
            seed: 0xDE_C5,
        }
    }
}

/// The DEX engine: a constant-degree self-healing expander.
///
/// See the crate docs for the model; construct with [`Dex::new`], drive with
/// [`HealingEngine::apply`]. Note that DEX is *reconfigurable*: it owns the
/// network topology outright, so the initial graph contributes **membership
/// only** — `Dex::new` immediately rewires those nodes into the overlay
/// projection. Mirrors and monitors should therefore be seeded from
/// [`Dex::graph`] *after* construction rather than from the pre-DEX graph.
#[derive(Clone, Debug)]
pub struct Dex {
    cfg: DexConfig,
    overlay: Overlay,
    /// Virtual node → hosting real node.
    host_of: BTreeMap<Vid, u64>,
    /// Real node → sorted virtual nodes it hosts (always 1..=max_load).
    hosted: BTreeMap<u64, Vec<Vid>>,
    /// The projected real network (all edges colored [`DEX_CLOUD`]).
    graph: Graph,
    /// Current projected edge set, kept to diff against after overlay ops.
    pairs: BTreeSet<(u64, u64)>,
    sinks: SinkRegistry,
    rng: StdRng,
    /// Colored edges added/removed by the event being applied.
    ev_added: usize,
    ev_removed: usize,
    /// Optional executor-span recorder; `None` keeps `apply` branch-only.
    tracer: Option<SharedTracer>,
    /// Repairs executed so far — the span/forensics key for each deletion.
    repair_seq: u64,
}

impl Dex {
    /// Builds a DEX network over the *nodes* of `initial` (its edges are
    /// discarded — DEX rewires membership into its own constant-degree
    /// expander; see the type docs).
    ///
    /// # Panics
    ///
    /// If `cfg.degree` is odd or less than 2, or `cfg.max_load` is 0.
    pub fn new(initial: &Graph, cfg: DexConfig) -> Self {
        assert!(
            cfg.degree >= 2 && cfg.degree % 2 == 0,
            "DexConfig::degree must be even and >= 2"
        );
        assert!(cfg.max_load >= 1, "DexConfig::max_load must be >= 1");
        let mut nodes: Vec<u64> = initial.node_vec().iter().map(|v| v.as_u64()).collect();
        nodes.sort_unstable();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let overlay = Overlay::bootstrap(cfg.degree, nodes.len(), &mut rng);
        let mut graph = Graph::new();
        let mut host_of = BTreeMap::new();
        let mut hosted = BTreeMap::new();
        for (vid, &node) in nodes.iter().enumerate() {
            graph.add_node(NodeId::new(node)).expect("fresh node");
            host_of.insert(vid as Vid, node);
            hosted.insert(node, vec![vid as Vid]);
        }
        let mut dex = Dex {
            cfg,
            overlay,
            host_of,
            hosted,
            graph,
            pairs: BTreeSet::new(),
            sinks: SinkRegistry::default(),
            rng,
            ev_added: 0,
            ev_removed: 0,
            tracer: None,
            repair_seq: 0,
        };
        dex.reconcile();
        dex
    }

    /// The engine name used in arena tables and experiment sweeps.
    pub fn name(&self) -> &'static str {
        "dex"
    }

    /// The current projected real network.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Attaches (or detaches, with `None`) a tracer recording executor spans
    /// (`exec.insert` / `exec.repair` / `exec.batch`) keyed by DEX's own
    /// repair sequence.
    pub fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        self.tracer = tracer;
    }

    /// The hard upper bound on any real node's degree: `max_load * degree`.
    /// Holds unconditionally — a real node hosts at most `max_load` virtual
    /// nodes with `degree` ports each, and every projected edge consumes at
    /// least one port.
    pub fn degree_bound(&self) -> usize {
        self.cfg.max_load * self.cfg.degree
    }

    /// Virtual nodes currently alive in the overlay.
    pub fn vnode_count(&self) -> usize {
        self.overlay.vnode_count()
    }

    /// Panics unless every internal invariant holds: overlay `d`-regularity,
    /// host loads within `1..=max_load`, host tables consistent, and the
    /// real graph exactly equal to the overlay projection. Test/debug aid.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        self.overlay.assert_invariants();
        assert_eq!(self.host_of.len(), self.overlay.vnode_count());
        let mut by_host: BTreeMap<u64, Vec<Vid>> = BTreeMap::new();
        for (&vid, &host) in &self.host_of {
            by_host.entry(host).or_default().push(vid);
        }
        assert_eq!(by_host, self.hosted, "host tables diverged");
        for (host, vids) in &self.hosted {
            assert!(
                (1..=self.cfg.max_load).contains(&vids.len()),
                "host {host} load {} outside 1..={}",
                vids.len(),
                self.cfg.max_load
            );
            assert!(
                self.graph.contains_node(NodeId::new(*host)),
                "host {host} not in graph"
            );
        }
        assert_eq!(self.graph.node_count(), self.hosted.len());
        assert_eq!(self.projected_pairs(), self.pairs, "stale pair cache");
        assert_eq!(self.graph.edge_count(), self.pairs.len());
        for &(a, b) in &self.pairs {
            assert!(self.graph.has_edge(NodeId::new(a), NodeId::new(b)));
        }
        let bound = self.degree_bound();
        for v in self.graph.node_vec() {
            let deg = self.graph.degree(v).unwrap();
            assert!(deg <= bound, "{v} degree {deg} > bound {bound}");
            assert_eq!(self.graph.black_degree(v), Some(0), "{v} has black edges");
        }
    }

    // -- event plumbing ----------------------------------------------------

    fn insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError> {
        if self.graph.contains_node(v) {
            return Err(HealError::NodeExists(v));
        }
        for &u in neighbors {
            if !self.graph.contains_node(u) {
                return Err(HealError::NeighborMissing(u));
            }
        }
        self.graph.add_node(v).expect("fresh");
        if !self.sinks.is_empty() {
            self.sinks.emit(TopologyDelta::NodeAdded(v));
        }
        let raw = v.as_u64();
        // Placement, in priority order: take over a spare virtual node from
        // the most loaded host; else split one (preferring a virtual node
        // hosted by a requested contact point); else the network was empty.
        if let Some(donor) = self.most_loaded_spare_host() {
            let vid = self
                .hosted
                .get_mut(&donor)
                .expect("donor host")
                .pop()
                .expect("spare vnode");
            self.host_of.insert(vid, raw);
            self.hosted.insert(raw, vec![vid]);
        } else if self.overlay.vnode_count() == 0 {
            let vid = self.overlay.fresh_isolated();
            self.host_of.insert(vid, raw);
            self.hosted.insert(raw, vec![vid]);
        } else {
            let mut candidates: Vec<Vid> = neighbors
                .iter()
                .filter_map(|u| self.hosted.get(&u.as_u64()))
                .flat_map(|vids| vids.iter().copied())
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            let w = if candidates.is_empty() {
                self.overlay.random_vid(&mut self.rng).expect("non-empty")
            } else {
                candidates[self.rng.random_range(0..candidates.len())]
            };
            let w2 = self.overlay.split(w);
            self.host_of.insert(w2, raw);
            self.hosted.insert(raw, vec![w2]);
        }
        self.reconcile();
        Ok(())
    }

    /// Deletes `v`, re-homes its virtual nodes, and enforces the load cap by
    /// merging. Returns `(victim degree, merges run, vnodes re-homed)`.
    fn delete_one(&mut self, v: NodeId) -> Result<(usize, usize, usize), HealError> {
        if !self.graph.contains_node(v) {
            return Err(HealError::NodeMissing(v));
        }
        let raw = v.as_u64();
        let degree = self.graph.degree(v).expect("checked");
        let orphans = self.hosted.remove(&raw).expect("every node hosts");
        self.graph.remove_node(v).expect("checked");
        if !self.sinks.is_empty() {
            self.sinks.emit(TopologyDelta::NodeRemoved(v));
        }
        // NodeRemoved implies incident-edge removal downstream; drop those
        // pairs from the cache without emitting edge deltas.
        self.pairs.retain(|&(a, b)| a != raw && b != raw);
        for &w in &orphans {
            self.host_of.remove(&w);
        }
        if self.hosted.is_empty() {
            // The network emptied out; the overlay dies with it.
            self.overlay.clear();
            self.reconcile();
            return Ok((degree, 0, 0));
        }
        // Re-home every orphan, preferring the least-loaded host among the
        // orphan's overlay peers (locality), falling back to the global
        // least-loaded host when all its peers are orphans too.
        let mut touched: BTreeSet<u64> = BTreeSet::new();
        for &w in &orphans {
            let mut peer_hosts: Vec<u64> = self
                .overlay
                .peer_vids(w)
                .into_iter()
                .filter_map(|p| self.host_of.get(&p).copied())
                .collect();
            peer_hosts.sort_unstable();
            peer_hosts.dedup();
            let new_host = peer_hosts
                .into_iter()
                .min_by_key(|h| (self.hosted[h].len(), *h))
                .unwrap_or_else(|| {
                    *self
                        .hosted
                        .iter()
                        .min_by_key(|(h, vids)| (vids.len(), **h))
                        .expect("non-empty")
                        .0
                });
            self.host_of.insert(w, new_host);
            let list = self.hosted.get_mut(&new_host).expect("host");
            let pos = list.partition_point(|&x| x < w);
            list.insert(pos, w);
            touched.insert(new_host);
        }
        // Merge virtual nodes wherever a host went over the load cap.
        let mut merges = 0;
        for host in touched {
            while self.hosted[&host].len() > self.cfg.max_load {
                let list = &self.hosted[&host];
                // Prefer merging an adjacent pair (cheapest splice: their
                // shared edges become droppable self-loops).
                let mut pick = (list[0], list[1]);
                'outer: for i in 0..list.len() {
                    for j in i + 1..list.len() {
                        if self.overlay.adjacent(list[i], list[j]) {
                            pick = (list[i], list[j]);
                            break 'outer;
                        }
                    }
                }
                let (keep, absorb) = pick;
                self.overlay.merge(keep, absorb);
                self.host_of.remove(&absorb);
                let list = self.hosted.get_mut(&host).expect("host");
                list.retain(|&x| x != absorb);
                merges += 1;
            }
        }
        // Merging splices port pairs; in rare shapes that can strand a
        // component — repair with degree-preserving 2-swaps.
        self.overlay.ensure_connected();
        self.reconcile();
        Ok((degree, merges, orphans.len()))
    }

    fn most_loaded_spare_host(&self) -> Option<u64> {
        self.hosted
            .iter()
            .filter(|(_, vids)| vids.len() >= 2)
            .max_by_key(|(h, vids)| (vids.len(), std::cmp::Reverse(**h)))
            .map(|(h, _)| *h)
    }

    /// The real edge set the overlay currently projects to.
    fn projected_pairs(&self) -> BTreeSet<(u64, u64)> {
        self.overlay
            .edge_endpoints()
            .filter_map(|(a, b)| {
                let ha = self.host_of[&a];
                let hb = self.host_of[&b];
                if ha == hb {
                    None
                } else {
                    Some((ha.min(hb), ha.max(hb)))
                }
            })
            .collect()
    }

    /// Diffs the overlay projection against the real graph and applies the
    /// difference, streaming colored-edge deltas. A full rebuild is O(n·d)
    /// per event — deliberate: the diff is bulletproof against every overlay
    /// op combination, and arena-scale networks keep it cheap (incremental
    /// projection is a follow-on if DEX ever joins the 1M-node benches).
    fn reconcile(&mut self) {
        let fresh = self.projected_pairs();
        let gone: Vec<(u64, u64)> = self.pairs.difference(&fresh).copied().collect();
        let born: Vec<(u64, u64)> = fresh.difference(&self.pairs).copied().collect();
        for (a, b) in gone {
            let (na, nb) = (NodeId::new(a), NodeId::new(b));
            let removed = self.graph.strip_color(na, nb, DEX_CLOUD);
            debug_assert!(removed, "projection edge {na}-{nb} missing from graph");
            self.ev_removed += 1;
            if !self.sinks.is_empty() {
                self.sinks.emit(TopologyDelta::EdgeRemoved {
                    a: na,
                    b: nb,
                    color: Some(DEX_CLOUD),
                });
            }
        }
        for (a, b) in born {
            let (na, nb) = (NodeId::new(a), NodeId::new(b));
            let created = self
                .graph
                .add_colored_edge(na, nb, DEX_CLOUD)
                .expect("live");
            debug_assert!(created, "projection already had {na}-{nb}");
            self.ev_added += 1;
            if !self.sinks.is_empty() {
                self.sinks.emit(TopologyDelta::EdgeAdded {
                    a: na,
                    b: nb,
                    color: Some(DEX_CLOUD),
                });
            }
        }
        self.pairs = fresh;
    }

    fn begin_event(&mut self) -> u64 {
        self.ev_added = 0;
        self.ev_removed = 0;
        self.overlay.port_ops()
    }

    /// DEX's cost model: every port rewiring is one message (ports live on
    /// hosts; pairing or splicing them is an exchange between the two hosts),
    /// re-homing a virtual node announces the new host to its `d` port
    /// peers, and repairs complete in a constant number of rounds plus one
    /// round per cascaded merge.
    fn cost(&self, ops_before: u64, merges: usize, rehomed: usize) -> DistCost {
        DistCost {
            rounds: 2 + merges as u64,
            messages: self.overlay.port_ops() - ops_before + (rehomed * self.cfg.degree) as u64,
            repairs: Vec::new(),
        }
    }
}

impl HealingEngine for Dex {
    fn name(&self) -> &'static str {
        "dex"
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn apply(&mut self, event: &Event) -> Result<Outcome, HealError> {
        match event {
            Event::Insert { node, neighbors } => {
                let ops = self.begin_event();
                self.insert(*node, neighbors)?;
                let cost = self.cost(ops, 0, 1);
                hook::instant(
                    &self.tracer,
                    Layer::Executor,
                    "exec.insert",
                    0,
                    cost.messages,
                );
                Ok(Outcome::Inserted { cost: Some(cost) })
            }
            Event::Delete { node } => {
                self.repair_seq += 1;
                let seq = self.repair_seq;
                hook::begin(
                    &self.tracer,
                    Layer::Executor,
                    "exec.repair",
                    seq,
                    node.as_u64(),
                );
                let ops = self.begin_event();
                let (degree, merges, rehomed) = self.delete_one(*node)?;
                hook::end(
                    &self.tracer,
                    Layer::Executor,
                    "exec.repair",
                    seq,
                    (self.ev_added + self.ev_removed) as u64,
                );
                Ok(Outcome::Healed {
                    report: DeletionReport {
                        // DEX edges are all colored primaries of one cloud.
                        case: if degree <= 1 {
                            HealCase::Dropped
                        } else {
                            HealCase::PrimaryOnly
                        },
                        edges_added: self.ev_added,
                        edges_removed: self.ev_removed,
                        combined: merges > 0,
                        shares: 0,
                        black_degree: 0,
                        degree,
                    },
                    cost: Some(self.cost(ops, merges, rehomed)),
                })
            }
            Event::DeleteBatch { nodes } => {
                BatchVictim::validate(&self.graph, nodes)?;
                self.repair_seq += 1;
                let seq = self.repair_seq;
                hook::begin(
                    &self.tracer,
                    Layer::Executor,
                    "exec.batch",
                    seq,
                    nodes.len() as u64,
                );
                let ops = self.begin_event();
                let mut merges = 0;
                let mut rehomed = 0;
                let mut added = 0;
                let mut removed = 0;
                for &v in nodes {
                    self.ev_added = 0;
                    self.ev_removed = 0;
                    let (_, m, r) = self.delete_one(v)?;
                    merges += m;
                    rehomed += r;
                    added += self.ev_added;
                    removed += self.ev_removed;
                }
                hook::end(
                    &self.tracer,
                    Layer::Executor,
                    "exec.batch",
                    seq,
                    (added + removed) as u64,
                );
                Ok(Outcome::Batch {
                    report: BatchReport {
                        victims: nodes.len(),
                        components: nodes.len(),
                        secondaries_built: 0,
                        combines: merges,
                        edges_added: added,
                        edges_removed: removed,
                    },
                    cost: Some(self.cost(ops, merges, rehomed)),
                })
            }
        }
    }

    fn subscribe(&mut self, sink: Box<dyn TopologySink>) {
        self.sinks.register(sink);
    }

    fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        Dex::set_tracer(self, tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use xheal_core::DeltaMirror;
    use xheal_graph::{components, generators};

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn bootstrap_is_connected_and_bounded() {
        for size in [1usize, 2, 3, 8, 40] {
            let dex = Dex::new(&generators::path(size), DexConfig::default());
            dex.assert_invariants();
            assert!(components::is_connected(dex.graph()), "size {size}");
            assert_eq!(dex.graph().node_count(), size);
        }
    }

    #[test]
    fn insert_and_delete_keep_invariants() {
        let mut dex = Dex::new(&generators::cycle(12), DexConfig::default());
        for i in 0..30u64 {
            dex.apply(&Event::Insert {
                node: n(100 + i),
                neighbors: vec![n(100 + i / 2), n((i % 12).min(11))]
                    .into_iter()
                    .filter(|&u| dex.graph().contains_node(u))
                    .collect(),
            })
            .unwrap();
            dex.assert_invariants();
            assert!(components::is_connected(dex.graph()), "insert {i}");
        }
        for i in 0..30u64 {
            dex.apply(&Event::Delete { node: n(100 + i) }).unwrap();
            dex.assert_invariants();
            assert!(components::is_connected(dex.graph()), "delete {i}");
        }
        assert_eq!(dex.graph().node_count(), 12);
    }

    #[test]
    fn batch_deletion_heals_and_reports() {
        let mut dex = Dex::new(&generators::complete(20), DexConfig::default());
        let out = dex
            .apply(&Event::DeleteBatch {
                nodes: (0..8).map(n).collect(),
            })
            .unwrap();
        let Outcome::Batch { report, cost } = out else {
            panic!("expected batch outcome");
        };
        assert_eq!(report.victims, 8);
        assert!(cost.is_some_and(|c| c.messages > 0));
        dex.assert_invariants();
        assert!(components::is_connected(dex.graph()));
        assert_eq!(dex.graph().node_count(), 12);
    }

    #[test]
    fn degree_bound_is_hard_under_adversarial_star_load() {
        // Hammer one surviving region: delete most of a large network so its
        // virtual nodes pile onto few hosts, then verify the projection never
        // exceeds max_load * degree.
        let cfg = DexConfig {
            degree: 6,
            max_load: 2,
            seed: 11,
        };
        let mut dex = Dex::new(&generators::complete(40), cfg);
        let bound = dex.degree_bound();
        for v in 0..36u64 {
            dex.apply(&Event::Delete { node: n(v) }).unwrap();
            dex.assert_invariants();
            let max = dex
                .graph()
                .node_vec()
                .iter()
                .map(|&u| dex.graph().degree(u).unwrap())
                .max()
                .unwrap();
            assert!(max <= bound, "after deleting {v}: {max} > {bound}");
        }
    }

    #[test]
    fn deterministic_across_reruns() {
        let g0 = generators::ring_with_chords(24);
        let events: Vec<Event> = (0..10u64)
            .map(|i| {
                if i % 3 == 0 {
                    Event::Insert {
                        node: n(200 + i),
                        // Odd survivors: the deletes below hit even ids only.
                        neighbors: vec![n(1), n(2 * i + 3)],
                    }
                } else {
                    Event::Delete { node: n(2 * i) }
                }
            })
            .collect();
        let run = |seed: u64| {
            let mut dex = Dex::new(
                &g0,
                DexConfig {
                    seed,
                    ..DexConfig::default()
                },
            );
            for e in &events {
                dex.apply(e).unwrap();
            }
            dex.graph().edge_fingerprint()
        };
        assert_eq!(run(42), run(42), "same seed must reproduce");
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn deltas_reproduce_the_graph() {
        let mut dex = Dex::new(&generators::grid(5, 5), DexConfig::default());
        // Mirror is seeded from the *post-bootstrap* graph: DEX rewired the
        // initial topology during construction (see type docs).
        let mirror = Rc::new(RefCell::new(DeltaMirror::new(dex.graph())));
        dex.subscribe(Box::new(Rc::clone(&mirror)));
        let events = [
            Event::Insert {
                node: n(500),
                neighbors: vec![n(0), n(12)],
            },
            Event::Delete { node: n(12) },
            Event::DeleteBatch {
                nodes: vec![n(0), n(1), n(5)],
            },
            Event::Insert {
                node: n(501),
                neighbors: vec![n(500)],
            },
        ];
        for e in &events {
            dex.apply(e).unwrap();
            assert_eq!(dex.graph(), mirror.borrow().graph(), "diverged on {e:?}");
        }
    }

    #[test]
    fn rejects_invalid_events_without_mutation() {
        let mut dex = Dex::new(&generators::cycle(6), DexConfig::default());
        let fp = dex.graph().edge_fingerprint();
        assert!(dex
            .apply(&Event::Insert {
                node: n(0),
                neighbors: vec![],
            })
            .is_err());
        assert!(dex
            .apply(&Event::Insert {
                node: n(99),
                neighbors: vec![n(77)],
            })
            .is_err());
        assert!(dex.apply(&Event::Delete { node: n(99) }).is_err());
        assert!(dex
            .apply(&Event::DeleteBatch {
                nodes: vec![n(1), n(1)],
            })
            .is_err());
        assert_eq!(dex.graph().edge_fingerprint(), fp);
        dex.assert_invariants();
    }

    #[test]
    fn empty_network_round_trip() {
        let mut dex = Dex::new(&generators::path(1), DexConfig::default());
        dex.apply(&Event::Delete { node: n(0) }).unwrap();
        assert_eq!(dex.graph().node_count(), 0);
        assert_eq!(dex.vnode_count(), 0);
        dex.apply(&Event::Insert {
            node: n(7),
            neighbors: vec![],
        })
        .unwrap();
        dex.apply(&Event::Insert {
            node: n(8),
            neighbors: vec![n(7)],
        })
        .unwrap();
        dex.assert_invariants();
        assert!(components::is_connected(dex.graph()));
    }
}
