//! The repair-forensics ledger: every span and instant carrying a repair
//! sequence number, grouped per repair into one inspectable tree — the
//! planner's decisions, the executor's action application, and the
//! protocol's message rounds of one repair, side by side.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::{CompletedSpan, Layer};

/// One entry of a repair's forensic tree (a span with duration, or an
/// instant without).
#[derive(Clone, Copy, Debug)]
pub struct ForensicEntry {
    /// Lane the entry was recorded on (0 = coordinator).
    pub lane: u64,
    /// Nesting depth within the lane.
    pub depth: u32,
    /// Architectural layer.
    pub layer: Layer,
    /// Span name.
    pub name: &'static str,
    /// Free-form argument.
    pub arg: u64,
    /// Duration in nanoseconds (`None` for instants).
    pub dur_nanos: Option<u64>,
}

/// Everything recorded about one repair, in deterministic
/// `(lane, lane_seq)` order.
#[derive(Clone, Debug)]
pub struct RepairRecord {
    /// The repair sequence number.
    pub repair: u64,
    /// The repair's tree, coordinator lane first.
    pub entries: Vec<ForensicEntry>,
}

impl RepairRecord {
    /// Total time of the repair's top-level spans (depth 0, lane 0).
    pub fn total_nanos(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.lane == 0 && e.depth == 0)
            .filter_map(|e| e.dur_nanos)
            .sum()
    }

    /// Number of entries from `layer`.
    pub fn layer_count(&self, layer: Layer) -> usize {
        self.entries.iter().filter(|e| e.layer == layer).count()
    }

    /// Count of instants named `name` (e.g. protocol rounds).
    pub fn instant_count(&self, name: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.name == name && e.dur_nanos.is_none())
            .count()
    }

    /// Sum of `arg` over instants named `name` (e.g. delivered messages).
    pub fn instant_arg_sum(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name && e.dur_nanos.is_none())
            .map(|e| e.arg)
            .sum()
    }
}

/// The per-repair ledger: one [`RepairRecord`] per repair sequence number
/// observed in the trace, ascending.
#[derive(Clone, Debug, Default)]
pub struct ForensicsLedger {
    /// Records sorted by repair sequence number.
    pub repairs: Vec<RepairRecord>,
}

impl ForensicsLedger {
    /// Groups completed spans by repair seq (0 — untagged events — is
    /// excluded). `spans` must be in deterministic order, as produced by
    /// `Tracer::completed_spans`.
    pub(crate) fn from_spans(spans: &[CompletedSpan]) -> Self {
        let mut by_repair: BTreeMap<u64, Vec<ForensicEntry>> = BTreeMap::new();
        for s in spans {
            if s.repair == 0 {
                continue;
            }
            by_repair.entry(s.repair).or_default().push(ForensicEntry {
                lane: s.lane,
                depth: s.depth,
                layer: s.layer,
                name: s.name,
                arg: s.arg,
                dur_nanos: s.dur_nanos,
            });
        }
        ForensicsLedger {
            repairs: by_repair
                .into_iter()
                .map(|(repair, entries)| RepairRecord { repair, entries })
                .collect(),
        }
    }

    /// The record of repair `seq`, if traced.
    pub fn repair(&self, seq: u64) -> Option<&RepairRecord> {
        self.repairs.iter().find(|r| r.repair == seq)
    }

    /// Renders the ledger as indented per-repair trees.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.repairs {
            let _ = writeln!(
                out,
                "repair #{} ({} entries, {:.1} us top-level)",
                r.repair,
                r.entries.len(),
                r.total_nanos() as f64 / 1e3
            );
            for e in &r.entries {
                let indent = "  ".repeat(e.depth as usize + 1);
                let lane = if e.lane == 0 {
                    String::new()
                } else {
                    format!(" [lane {}]", e.lane)
                };
                match e.dur_nanos {
                    Some(d) => {
                        let _ = writeln!(
                            out,
                            "{indent}{} {} (arg {}) {:.1} us{lane}",
                            e.layer.label(),
                            e.name,
                            e.arg,
                            d as f64 / 1e3
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "{indent}{} {} (arg {}){lane}",
                            e.layer.label(),
                            e.name,
                            e.arg
                        );
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Layer, Tracer};

    #[test]
    fn ledger_groups_by_repair_and_renders() {
        let mut t = Tracer::new(64);
        for seq in 1..=3u64 {
            t.begin(Layer::Executor, "repair", seq, 0);
            t.begin(Layer::Planner, "plan.single", seq, 0);
            t.instant(Layer::Planner, "plan.case", seq, 1);
            t.end(Layer::Planner, "plan.single", seq, 0);
            t.instant(Layer::Protocol, "proto.round", seq, 5);
            t.instant(Layer::Protocol, "proto.round", seq, 7);
            t.end(Layer::Executor, "repair", seq, 0);
        }
        t.instant(Layer::Transport, "net.step", 0, 1); // untagged: excluded
        let ledger = t.forensics();
        assert_eq!(ledger.repairs.len(), 3);
        let r2 = ledger.repair(2).unwrap();
        assert_eq!(r2.instant_count("proto.round"), 2);
        assert_eq!(r2.instant_arg_sum("proto.round"), 12);
        assert!(r2.layer_count(Layer::Planner) >= 2);
        assert!(r2.total_nanos() > 0 || r2.entries.iter().any(|e| e.dur_nanos.is_some()));
        let text = ledger.render();
        assert!(text.contains("repair #1"));
        assert!(text.contains("plan.single"));
        assert!(!text.contains("net.step"));
    }
}
