//! # xheal-trace
//!
//! Cross-layer structured tracing for the healing stack: hierarchical spans
//! (repair → plan phase → action application → protocol round) recorded
//! into a reusable ring-buffer [`Tracer`], a [`MetricsRegistry`] of
//! counters/gauges/log-bucket histograms snapshot-diffable per event, a
//! repair-forensics ledger ([`ForensicsLedger`]) keyed by repair sequence
//! number, and a chrome://tracing Trace Event JSON exporter.
//!
//! The subsystem is **pay-for-what-you-use**: every instrumentation point in
//! the workspace is a branch on an `Option<`[`SharedTracer`]`>` handle (see
//! [`hook`]), so with no tracer attached nothing is locked, recorded, or
//! allocated. With a tracer attached, recording a span event is one mutex
//! lock plus one write into a preallocated ring — steady-state recording
//! never allocates (the ring overwrites its oldest events when full).
//!
//! Spans are **lane-aware** for deterministic parallel capture: worker
//! threads record into logical lanes keyed by *task identity* (e.g. dead
//! component index), not thread id, and [`Tracer::span_tree`] merges lanes
//! in `(lane, per-lane sequence)` order — so identical seeds produce
//! identical span trees at every thread count.
//!
//! # Examples
//!
//! ```
//! use xheal_trace::{Layer, Tracer};
//!
//! let mut t = Tracer::new(128);
//! t.begin(Layer::Executor, "repair", 1, 0);
//! t.begin(Layer::Planner, "plan.single", 1, 3);
//! t.instant(Layer::Planner, "plan.case", 1, 2);
//! t.end(Layer::Planner, "plan.single", 1, 3);
//! t.end(Layer::Executor, "repair", 1, 0);
//!
//! let tree = t.span_tree();
//! assert_eq!(tree.len(), 5);
//! assert_eq!(tree[1].depth, 1); // plan.single nests under repair
//! let json = t.chrome_trace_json();
//! assert!(json.contains("\"traceEvents\""));
//! assert!(json.contains("\"ph\": \"B\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod forensics;
pub mod hook;
mod metrics;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use forensics::{ForensicEntry, ForensicsLedger, RepairRecord};
pub use metrics::{CounterId, GaugeId, HistId, MetricsFrame, MetricsRegistry};

/// The architectural layer a span event belongs to. The acceptance surface
/// of a trace: a healed run shows spans from the planner, the executors,
/// the protocol/transport substrate, and the monitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// `RepairPlanner` decision phases.
    Planner,
    /// Healing engines (Xheal, ParallelXheal, DistXheal, DEX, baselines).
    Executor,
    /// The distributed actor protocol (per-repair message rounds).
    Protocol,
    /// The message substrate (`SyncNetwork` / calendar-queue `AsyncNetwork`).
    Transport,
    /// `xheal-monitor` checkpoints and health transitions.
    Monitor,
    /// Bench/workload harness phases.
    Harness,
}

impl Layer {
    /// Stable lower-case label (chrome-trace category, summaries).
    pub fn label(self) -> &'static str {
        match self {
            Layer::Planner => "planner",
            Layer::Executor => "executor",
            Layer::Protocol => "protocol",
            Layer::Transport => "transport",
            Layer::Monitor => "monitor",
            Layer::Harness => "harness",
        }
    }
}

/// What a recorded event marks: a span opening, a span closing, or a point
/// event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvKind {
    /// Span opens (chrome `ph: "B"`).
    Begin,
    /// Span closes (chrome `ph: "E"`).
    End,
    /// Point event (chrome `ph: "i"`).
    Instant,
}

/// One recorded trace event (fixed-size, `Copy` — the ring holds these).
#[derive(Clone, Copy, Debug)]
pub struct SpanEvent {
    /// Begin / End / Instant.
    pub kind: EvKind,
    /// Architectural layer.
    pub layer: Layer,
    /// Span name (static, allocation-free).
    pub name: &'static str,
    /// Repair sequence number this event belongs to (0 = none).
    pub repair: u64,
    /// Free-form argument (case code, action count, component index, …).
    pub arg: u64,
    /// Logical lane: 0 for the coordinating thread, task-keyed for workers.
    pub lane: u64,
    /// Position within the lane (assigned at record time; the deterministic
    /// sort key).
    pub lane_seq: u64,
    /// Nanoseconds since the tracer's epoch.
    pub ts_nanos: u64,
}

/// One event of the deterministic span-tree projection: everything a
/// [`SpanEvent`] carries except wall-clock time, plus nesting depth.
/// Two traced runs with identical seeds produce equal trees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeEvent {
    /// Logical lane.
    pub lane: u64,
    /// Nesting depth within the lane (a `Begin` is reported at the depth it
    /// opens; its `End` at the same depth).
    pub depth: u32,
    /// Begin / End / Instant.
    pub kind: EvKind,
    /// Architectural layer.
    pub layer: Layer,
    /// Span name.
    pub name: &'static str,
    /// Repair sequence number.
    pub repair: u64,
    /// Free-form argument.
    pub arg: u64,
}

/// A span paired from its Begin/End events (or a lone instant), with
/// wall-clock duration — the unit the summaries and the forensics ledger
/// aggregate over.
#[derive(Clone, Copy, Debug)]
pub struct CompletedSpan {
    /// Logical lane.
    pub lane: u64,
    /// Nesting depth within the lane.
    pub depth: u32,
    /// Architectural layer.
    pub layer: Layer,
    /// Span name.
    pub name: &'static str,
    /// Repair sequence number (0 = none).
    pub repair: u64,
    /// Free-form argument.
    pub arg: u64,
    /// Lane sequence of the opening event (ordering key).
    pub lane_seq: u64,
    /// Start, nanoseconds since epoch.
    pub start_nanos: u64,
    /// Duration in nanoseconds (`None` for instants and unclosed spans).
    pub dur_nanos: Option<u64>,
}

/// A reusable fixed-capacity span recorder plus an embedded
/// [`MetricsRegistry`]. See the [crate docs](crate) for the model.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    ring: Vec<SpanEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    wrapped: bool,
    /// Events overwritten since the last [`Tracer::clear`].
    dropped: u64,
    lane_seqs: BTreeMap<u64, u64>,
    metrics: MetricsRegistry,
}

/// The shared handle engines hold: `Arc<Mutex<Tracer>>`, so one tracer can
/// observe an engine, its planner, its transport, and its monitor at once —
/// including from `xheal-pool` worker threads.
pub type SharedTracer = Arc<Mutex<Tracer>>;

impl Tracer {
    /// A tracer whose ring holds `capacity` events (clamped to at least 16).
    /// All ring storage is allocated here, up front.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            ring: Vec::with_capacity(capacity.max(16)),
            head: 0,
            wrapped: false,
            dropped: 0,
            lane_seqs: BTreeMap::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// A fresh tracer behind the [`SharedTracer`] handle engines accept.
    pub fn shared(capacity: usize) -> SharedTracer {
        Arc::new(Mutex::new(Tracer::new(capacity)))
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Events overwritten by ring wraparound since the last clear.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded since the last clear.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Resets the ring, lane sequences, and drop counter for reuse (the
    /// metrics registry and its registrations survive; counters keep
    /// accumulating across clears).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.wrapped = false;
        self.dropped = 0;
        self.lane_seqs.clear();
    }

    /// The embedded metrics registry.
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Read access to the embedded metrics registry.
    pub fn metrics_ref(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn record(
        &mut self,
        kind: EvKind,
        lane: u64,
        layer: Layer,
        name: &'static str,
        repair: u64,
        arg: u64,
    ) {
        let seq = self.lane_seqs.entry(lane).or_insert(0);
        let lane_seq = *seq;
        *seq += 1;
        let ev = SpanEvent {
            kind,
            layer,
            name,
            repair,
            arg,
            lane,
            lane_seq,
            ts_nanos: self.epoch.elapsed().as_nanos() as u64,
        };
        if self.ring.len() < self.ring.capacity() {
            self.ring.push(ev);
        } else {
            // Overwrite the oldest event; exporters re-balance pairs.
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.ring.len();
            self.wrapped = true;
            self.dropped += 1;
        }
    }

    /// Opens a span on lane 0 (the coordinating thread).
    pub fn begin(&mut self, layer: Layer, name: &'static str, repair: u64, arg: u64) {
        self.record(EvKind::Begin, 0, layer, name, repair, arg);
    }

    /// Closes the innermost open span on lane 0. `name`/`repair`/`arg` are
    /// recorded verbatim (exporters pair by nesting, not by name).
    pub fn end(&mut self, layer: Layer, name: &'static str, repair: u64, arg: u64) {
        self.record(EvKind::End, 0, layer, name, repair, arg);
    }

    /// Records a point event on lane 0.
    pub fn instant(&mut self, layer: Layer, name: &'static str, repair: u64, arg: u64) {
        self.record(EvKind::Instant, 0, layer, name, repair, arg);
    }

    /// Opens a span on an explicit lane. Worker threads must key `lane` on
    /// task identity (component index, cloud color), never on thread id, so
    /// the merged tree is schedule-independent.
    pub fn begin_lane(
        &mut self,
        lane: u64,
        layer: Layer,
        name: &'static str,
        repair: u64,
        arg: u64,
    ) {
        self.record(EvKind::Begin, lane, layer, name, repair, arg);
    }

    /// Closes the innermost open span on `lane`.
    pub fn end_lane(&mut self, lane: u64, layer: Layer, name: &'static str, repair: u64, arg: u64) {
        self.record(EvKind::End, lane, layer, name, repair, arg);
    }

    /// Records a point event on `lane`.
    pub fn instant_lane(
        &mut self,
        lane: u64,
        layer: Layer,
        name: &'static str,
        repair: u64,
        arg: u64,
    ) {
        self.record(EvKind::Instant, lane, layer, name, repair, arg);
    }

    /// Events oldest-first (ring order). Within a lane this is also
    /// `lane_seq` order; across lanes it is wall-clock arrival order.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        if self.wrapped {
            out.extend_from_slice(&self.ring[self.head..]);
            out.extend_from_slice(&self.ring[..self.head]);
        } else {
            out.extend_from_slice(&self.ring);
        }
        out
    }

    /// Events sorted by `(lane, lane_seq)` — the deterministic order every
    /// derived view is built from.
    fn events_deterministic(&self) -> Vec<SpanEvent> {
        let mut evs = self.events();
        evs.sort_by_key(|e| (e.lane, e.lane_seq));
        evs
    }

    /// The deterministic span-tree projection: events in `(lane, lane_seq)`
    /// order with per-lane nesting depths and no timestamps. `End` events
    /// whose `Begin` was overwritten by ring wraparound are dropped, so the
    /// tree is always balanced.
    ///
    /// Two runs with identical seeds — at any `xheal-pool` thread count —
    /// produce equal trees.
    pub fn span_tree(&self) -> Vec<TreeEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        let mut depth: BTreeMap<u64, u32> = BTreeMap::new();
        for ev in self.events_deterministic() {
            let d = depth.entry(ev.lane).or_insert(0);
            let event_depth = match ev.kind {
                EvKind::Begin => {
                    let at = *d;
                    *d += 1;
                    at
                }
                EvKind::End => {
                    if *d == 0 {
                        continue; // orphan: opening event was overwritten
                    }
                    *d -= 1;
                    *d
                }
                EvKind::Instant => *d,
            };
            out.push(TreeEvent {
                lane: ev.lane,
                depth: event_depth,
                kind: ev.kind,
                layer: ev.layer,
                name: ev.name,
                repair: ev.repair,
                arg: ev.arg,
            });
        }
        out
    }

    /// Spans with Begin/End paired into durations, plus instants
    /// (`dur_nanos: None`), in deterministic `(lane, lane_seq)` order of
    /// their opening events. Unmatched events from ring wraparound are
    /// dropped.
    pub fn completed_spans(&self) -> Vec<CompletedSpan> {
        let mut out: Vec<CompletedSpan> = Vec::new();
        // Per-lane stack of indices into `out` awaiting their End.
        let mut stacks: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for ev in self.events_deterministic() {
            let stack = stacks.entry(ev.lane).or_default();
            match ev.kind {
                EvKind::Begin => {
                    let idx = out.len();
                    out.push(CompletedSpan {
                        lane: ev.lane,
                        depth: stack.len() as u32,
                        layer: ev.layer,
                        name: ev.name,
                        repair: ev.repair,
                        arg: ev.arg,
                        lane_seq: ev.lane_seq,
                        start_nanos: ev.ts_nanos,
                        dur_nanos: None,
                    });
                    stack.push(idx);
                }
                EvKind::End => {
                    if let Some(idx) = stack.pop() {
                        out[idx].dur_nanos = Some(ev.ts_nanos.saturating_sub(out[idx].start_nanos));
                    }
                }
                EvKind::Instant => out.push(CompletedSpan {
                    lane: ev.lane,
                    depth: stack.len() as u32,
                    layer: ev.layer,
                    name: ev.name,
                    repair: ev.repair,
                    arg: ev.arg,
                    lane_seq: ev.lane_seq,
                    start_nanos: ev.ts_nanos,
                    dur_nanos: None,
                }),
            }
        }
        out.sort_by_key(|s| (s.lane, s.lane_seq));
        out
    }

    /// Chrome Trace Event JSON (the `chrome://tracing` / Perfetto format):
    /// `{"traceEvents": [...]}` with balanced per-tid `B`/`E` duration
    /// events (lane = tid) and `i` instants, timestamps in microseconds.
    pub fn chrome_trace_json(&self) -> String {
        chrome::render(&self.events())
    }

    /// The per-repair forensics ledger derived from the recorded spans.
    pub fn forensics(&self) -> ForensicsLedger {
        ForensicsLedger::from_spans(&self.completed_spans())
    }

    /// A compact per-phase text summary: for every `(layer, name)` pair the
    /// span count, total and max duration (or the event count, for
    /// instants), sorted by total time descending.
    pub fn phase_summary(&self) -> String {
        use std::fmt::Write;
        #[derive(Default)]
        struct Agg {
            count: u64,
            total_ns: u64,
            max_ns: u64,
            instants: u64,
        }
        let mut by_phase: BTreeMap<(Layer, &'static str), Agg> = BTreeMap::new();
        for s in self.completed_spans() {
            let a = by_phase.entry((s.layer, s.name)).or_default();
            match s.dur_nanos {
                Some(d) => {
                    a.count += 1;
                    a.total_ns += d;
                    a.max_ns = a.max_ns.max(d);
                }
                None => a.instants += 1,
            }
        }
        let mut rows: Vec<_> = by_phase.into_iter().collect();
        rows.sort_by_key(|(_, a)| std::cmp::Reverse((a.total_ns, a.instants)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<11}{:<22}{:>9}{:>12}{:>12}{:>9}",
            "layer", "span", "count", "total_us", "max_us", "events"
        );
        for ((layer, name), a) in rows {
            let _ = writeln!(
                out,
                "{:<11}{:<22}{:>9}{:>12.1}{:>12.1}{:>9}",
                layer.label(),
                name,
                a.count,
                a.total_ns as f64 / 1e3,
                a.max_ns as f64 / 1e3,
                a.instants,
            );
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "({} events dropped by ring wraparound)", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_rebalances() {
        let mut t = Tracer::new(16);
        for i in 0..40u64 {
            t.begin(Layer::Executor, "repair", i, 0);
            t.end(Layer::Executor, "repair", i, 0);
        }
        assert_eq!(t.len(), 16);
        assert_eq!(t.dropped(), 64);
        let evs = t.events();
        assert_eq!(evs.len(), 16);
        // Oldest-first: repair seqs ascend.
        assert!(evs.windows(2).all(|w| w[0].repair <= w[1].repair));
        // The tree stays balanced even if a Begin was overwritten mid-pair.
        let tree = t.span_tree();
        let begins = tree.iter().filter(|e| e.kind == EvKind::Begin).count();
        let ends = tree.iter().filter(|e| e.kind == EvKind::End).count();
        assert_eq!(begins, ends);
    }

    #[test]
    fn lanes_merge_deterministically() {
        let mk = |order: &[u64]| {
            let mut t = Tracer::new(64);
            t.begin(Layer::Executor, "batch", 1, 0);
            for &lane in order {
                t.begin_lane(lane, Layer::Planner, "spec.component", 1, lane - 1);
                t.end_lane(lane, Layer::Planner, "spec.component", 1, lane - 1);
            }
            t.end(Layer::Executor, "batch", 1, 0);
            t.span_tree()
        };
        // Worker arrival order differs; the merged tree does not.
        assert_eq!(mk(&[1, 2, 3]), mk(&[3, 1, 2]));
    }

    #[test]
    fn completed_spans_have_durations_and_nesting() {
        let mut t = Tracer::new(64);
        t.begin(Layer::Executor, "repair", 7, 0);
        t.begin(Layer::Planner, "plan.single", 7, 0);
        t.instant(Layer::Planner, "plan.case", 7, 3);
        t.end(Layer::Planner, "plan.single", 7, 0);
        t.end(Layer::Executor, "repair", 7, 0);
        let spans = t.completed_spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "repair");
        assert_eq!(spans[0].depth, 0);
        assert!(spans[0].dur_nanos.is_some());
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].name, "plan.case");
        assert!(spans[2].dur_nanos.is_none());
        assert!(spans[0].dur_nanos >= spans[1].dur_nanos);
    }

    #[test]
    fn clear_resets_ring_but_keeps_metrics() {
        let mut t = Tracer::new(32);
        let c = t.metrics().counter("repairs");
        t.metrics().add(c, 5);
        t.begin(Layer::Executor, "repair", 1, 0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.metrics_ref().counter_value("repairs"), Some(5));
    }

    #[test]
    fn phase_summary_lists_phases() {
        let mut t = Tracer::new(32);
        t.begin(Layer::Planner, "plan.batch", 1, 4);
        t.end(Layer::Planner, "plan.batch", 1, 4);
        t.instant(Layer::Transport, "net.step", 0, 9);
        let s = t.phase_summary();
        assert!(s.contains("plan.batch"));
        assert!(s.contains("net.step"));
        assert!(s.contains("planner"));
        assert!(s.contains("transport"));
    }
}
