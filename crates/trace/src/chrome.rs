//! Chrome Trace Event JSON export (the `chrome://tracing` / Perfetto
//! "JSON Array Format" with duration events).
//!
//! Guarantees the downstream validators rely on, per tid (= lane):
//! `B`/`E` pairs balance (orphan `E`s from ring wraparound are skipped,
//! dangling `B`s are closed at the lane's last timestamp) and timestamps
//! are monotone non-decreasing.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::{EvKind, SpanEvent};

fn push_event(out: &mut String, ev: &SpanEvent, ph: char, ts_nanos: u64) {
    // Span names are static identifiers; escape defensively anyway.
    let name: String = ev
        .name
        .chars()
        .filter(|c| *c != '"' && *c != '\\' && !c.is_control())
        .collect();
    let _ = write!(
        out,
        "    {{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"{ph}\", \
         \"pid\": 0, \"tid\": {tid}, \"ts\": {us}.{frac:03}",
        cat = ev.layer.label(),
        tid = ev.lane,
        us = ts_nanos / 1_000,
        frac = ts_nanos % 1_000,
    );
    if ph == 'i' {
        let _ = write!(out, ", \"s\": \"t\"");
    }
    let _ = write!(
        out,
        ", \"args\": {{\"repair\": {}, \"arg\": {}}}}}",
        ev.repair, ev.arg
    );
}

/// Renders `events` (ring order, oldest first) as a complete JSON document.
pub(crate) fn render(events: &[SpanEvent]) -> String {
    // Per-lane open-span stacks (the events that produced them) and the
    // last timestamp seen, for closing dangling spans monotonically.
    let mut open: BTreeMap<u64, Vec<SpanEvent>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut body = String::new();
    let mut first = true;
    let mut emit = |body: &mut String, ev: &SpanEvent, ph: char, ts: u64| {
        if !std::mem::take(&mut first) {
            body.push_str(",\n");
        }
        push_event(body, ev, ph, ts);
    };
    for ev in events {
        let ts = last_ts.entry(ev.lane).or_insert(0);
        // Defensive clamp: the clock is monotone already, this makes the
        // invariant structural.
        let at = (*ts).max(ev.ts_nanos);
        *ts = at;
        match ev.kind {
            EvKind::Begin => {
                emit(&mut body, ev, 'B', at);
                open.entry(ev.lane).or_default().push(*ev);
            }
            EvKind::End => {
                // Orphan End (its Begin was overwritten): skip.
                if open.entry(ev.lane).or_default().pop().is_some() {
                    emit(&mut body, ev, 'E', at);
                }
            }
            EvKind::Instant => emit(&mut body, ev, 'i', at),
        }
    }
    // Close dangling spans innermost-first at the lane's last timestamp.
    for (lane, stack) in &mut open {
        let ts = last_ts.get(lane).copied().unwrap_or(0);
        while let Some(ev) = stack.pop() {
            emit(&mut body, &ev, 'E', ts);
        }
    }
    format!("{{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n{body}\n  ]\n}}\n")
}

#[cfg(test)]
mod tests {
    use crate::{Layer, Tracer};

    fn balanced_per_tid(json: &str) -> bool {
        // Count "ph": "B" and "ph": "E" per tid with a crude scan — the
        // format is machine-written, one event per line.
        let mut depth: std::collections::BTreeMap<&str, i64> = std::collections::BTreeMap::new();
        for line in json.lines() {
            let Some(tid_at) = line.find("\"tid\": ") else {
                continue;
            };
            let tid = &line[tid_at + 7..line[tid_at..].find(',').unwrap() + tid_at];
            let d = depth.entry(tid).or_insert(0);
            if line.contains("\"ph\": \"B\"") {
                *d += 1;
            } else if line.contains("\"ph\": \"E\"") {
                *d -= 1;
                if *d < 0 {
                    return false;
                }
            }
        }
        depth.values().all(|&d| d == 0)
    }

    #[test]
    fn export_is_balanced_and_well_formed() {
        let mut t = Tracer::new(64);
        t.begin(Layer::Executor, "repair", 1, 0);
        t.begin(Layer::Planner, "plan.single", 1, 0);
        t.instant(Layer::Planner, "plan.case", 1, 2);
        t.end(Layer::Planner, "plan.single", 1, 0);
        // "repair" left open deliberately: the exporter must close it.
        let json = t.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"cat\": \"planner\""));
        assert!(json.contains("\"s\": \"t\""));
        assert!(balanced_per_tid(&json));
    }

    #[test]
    fn wrapped_ring_still_balances() {
        let mut t = Tracer::new(16);
        for i in 0..50u64 {
            t.begin(Layer::Executor, "repair", i, 0);
            t.instant(Layer::Transport, "net.step", i, 1);
            t.end(Layer::Executor, "repair", i, 0);
        }
        assert!(t.dropped() > 0);
        assert!(balanced_per_tid(&t.chrome_trace_json()));
    }

    #[test]
    fn empty_tracer_exports_empty_array() {
        let t = Tracer::new(16);
        let json = t.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(balanced_per_tid(&json));
    }
}
