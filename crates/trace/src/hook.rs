//! Instrumentation hooks: free functions over `&Option<SharedTracer>`.
//!
//! Every instrumented call site in the workspace goes through these, so the
//! disabled path (`None` handle) is exactly one branch — no lock, no clock
//! read, no allocation. This is the contract the bench suite's counting
//! allocator and the churn overhead gate verify.

use std::sync::MutexGuard;

use crate::{Layer, SharedTracer, Tracer};

/// Locks the tracer, recovering from a poisoned mutex (a panicking worker
/// must not take the trace down with it).
pub fn lock(t: &SharedTracer) -> MutexGuard<'_, Tracer> {
    t.lock().unwrap_or_else(|e| e.into_inner())
}

/// Opens a span on lane 0 if a tracer is attached.
#[inline]
pub fn begin(t: &Option<SharedTracer>, layer: Layer, name: &'static str, repair: u64, arg: u64) {
    if let Some(t) = t {
        lock(t).begin(layer, name, repair, arg);
    }
}

/// Closes a span on lane 0 if a tracer is attached.
#[inline]
pub fn end(t: &Option<SharedTracer>, layer: Layer, name: &'static str, repair: u64, arg: u64) {
    if let Some(t) = t {
        lock(t).end(layer, name, repair, arg);
    }
}

/// Records a point event on lane 0 if a tracer is attached.
#[inline]
pub fn instant(t: &Option<SharedTracer>, layer: Layer, name: &'static str, repair: u64, arg: u64) {
    if let Some(t) = t {
        lock(t).instant(layer, name, repair, arg);
    }
}

/// Opens a span on an explicit lane (worker threads; key the lane on task
/// identity, not thread id).
#[inline]
pub fn begin_lane(
    t: &Option<SharedTracer>,
    lane: u64,
    layer: Layer,
    name: &'static str,
    repair: u64,
    arg: u64,
) {
    if let Some(t) = t {
        lock(t).begin_lane(lane, layer, name, repair, arg);
    }
}

/// Closes a span on an explicit lane.
#[inline]
pub fn end_lane(
    t: &Option<SharedTracer>,
    lane: u64,
    layer: Layer,
    name: &'static str,
    repair: u64,
    arg: u64,
) {
    if let Some(t) = t {
        lock(t).end_lane(lane, layer, name, repair, arg);
    }
}

/// Bumps the named metrics counter by `n` if a tracer is attached.
#[inline]
pub fn bump(t: &Option<SharedTracer>, name: &'static str, n: u64) {
    if let Some(t) = t {
        lock(t).metrics().bump(name, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EvKind;

    #[test]
    fn hooks_are_noops_without_a_tracer() {
        let none: Option<SharedTracer> = None;
        begin(&none, Layer::Executor, "repair", 1, 0);
        end(&none, Layer::Executor, "repair", 1, 0);
        instant(&none, Layer::Transport, "net.step", 0, 3);
        bump(&none, "repairs", 1);
    }

    #[test]
    fn hooks_record_through_the_shared_handle() {
        let t = Some(Tracer::shared(32));
        begin(&t, Layer::Executor, "repair", 1, 0);
        begin_lane(&t, 2, Layer::Planner, "spec.component", 1, 1);
        end_lane(&t, 2, Layer::Planner, "spec.component", 1, 1);
        end(&t, Layer::Executor, "repair", 1, 0);
        bump(&t, "repairs", 2);
        let g = lock(t.as_ref().unwrap());
        assert_eq!(g.len(), 4);
        assert_eq!(g.metrics_ref().counter_value("repairs"), Some(2));
        let tree = g.span_tree();
        assert_eq!(tree[0].kind, EvKind::Begin);
        assert_eq!(tree[0].lane, 0);
        assert_eq!(tree[2].lane, 2);
    }
}
