//! The metrics registry: counters, gauges, and log-bucket histograms,
//! registered once by static name and snapshot-diffable per event.

/// Handle of a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle of a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle of a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

/// Power-of-two bucket count: bucket 0 holds value 0, bucket `b` holds
/// values in `[2^(b-1), 2^b)`, the last bucket absorbs the tail.
pub(crate) const BUCKETS: usize = 65;

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// A registry of named counters, gauges, and log-bucket histograms.
///
/// Registration (by `&'static str` name) allocates; recording through a
/// returned id touches one slot and never allocates — the hot-path contract
/// the instrumented engines rely on.
///
/// # Examples
///
/// ```
/// use xheal_trace::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// let repairs = m.counter("repairs");
/// let lat = m.histogram("repair_rounds");
/// let before = m.frame();
/// m.add(repairs, 3);
/// m.record(lat, 12);
/// m.record(lat, 900);
/// let delta = m.frame().diff(&before);
/// assert_eq!(delta.counter("repairs"), Some(3));
/// assert_eq!(delta.hist_count("repair_rounds"), 2);
/// assert!(delta.hist_quantile("repair_rounds", 0.5) <= 16);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, i64)>,
    hists: Vec<(&'static str, [u64; BUCKETS])>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or finds) the counter named `name`.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) the gauge named `name`.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| *n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name, 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) the histogram named `name`.
    pub fn histogram(&mut self, name: &'static str) -> HistId {
        if let Some(i) = self.hists.iter().position(|(n, _)| *n == name) {
            return HistId(i);
        }
        self.hists.push((name, [0; BUCKETS]));
        HistId(self.hists.len() - 1)
    }

    /// Adds `n` to a counter. Never allocates.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Registers `name` if needed and adds `n` — the convenience path for
    /// cold call sites; hot paths should hold a [`CounterId`].
    pub fn bump(&mut self, name: &'static str, n: u64) {
        let id = self.counter(name);
        self.add(id, n);
    }

    /// Sets a gauge. Never allocates.
    pub fn set(&mut self, id: GaugeId, v: i64) {
        self.gauges[id.0].1 = v;
    }

    /// Records one observation into a histogram. Never allocates.
    pub fn record(&mut self, id: HistId, v: u64) {
        self.hists[id.0].1[bucket_of(v)] += 1;
    }

    /// Current value of the counter named `name`, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// A point-in-time copy of every metric, diffable against another frame.
    pub fn frame(&self) -> MetricsFrame {
        MetricsFrame {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            hists: self.hists.clone(),
        }
    }
}

/// A snapshot of a [`MetricsRegistry`] — either absolute (from
/// [`MetricsRegistry::frame`]) or a delta (from [`MetricsFrame::diff`]).
#[derive(Clone, Debug, Default)]
pub struct MetricsFrame {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, i64)>,
    hists: Vec<(&'static str, [u64; BUCKETS])>,
}

impl MetricsFrame {
    /// The change from `earlier` to `self`: counters and histogram buckets
    /// subtract (saturating, by name); gauges keep their later value.
    /// Metrics registered only in `self` pass through unchanged.
    pub fn diff(&self, earlier: &MetricsFrame) -> MetricsFrame {
        let counters = self
            .counters
            .iter()
            .map(|&(name, v)| {
                let e = earlier.counter(name).unwrap_or(0);
                (name, v.saturating_sub(e))
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|&(name, buckets)| {
                let mut out = buckets;
                if let Some((_, eb)) = earlier.hists.iter().find(|(n, _)| *n == name) {
                    for (o, e) in out.iter_mut().zip(eb.iter()) {
                        *o = o.saturating_sub(*e);
                    }
                }
                (name, out)
            })
            .collect();
        MetricsFrame {
            counters,
            gauges: self.gauges.clone(),
            hists,
        }
    }

    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Total observations recorded in the histogram named `name`.
    pub fn hist_count(&self, name: &str) -> u64 {
        self.hists
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, b)| b.iter().sum())
    }

    /// Upper bound of the bucket holding quantile `q` (e.g. `0.5`, `0.99`)
    /// of the histogram named `name`; 0 when empty. Log-bucket resolution:
    /// the answer is exact to within a factor of two.
    pub fn hist_quantile(&self, name: &str, q: f64) -> u64 {
        let Some((_, b)) = self.hists.iter().find(|(n, _)| *n == name) else {
            return 0;
        };
        let total: u64 = b.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &cnt) in b.iter().enumerate() {
            seen += cnt;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        u64::MAX
    }

    /// All counters `(name, value)`, registration order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// All gauges `(name, value)`, registration order.
    pub fn gauges(&self) -> &[(&'static str, i64)] {
        &self.gauges
    }

    /// Histogram names, registration order.
    pub fn hist_names(&self) -> Vec<&'static str> {
        self.hists.iter().map(|(n, _)| *n).collect()
    }

    /// Renders the nonzero metrics as aligned text lines.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for &(name, v) in &self.counters {
            if v > 0 {
                let _ = writeln!(out, "{name:<26}{v:>12}");
            }
        }
        for &(name, v) in &self.gauges {
            if v != 0 {
                let _ = writeln!(out, "{name:<26}{v:>12}");
            }
        }
        for (name, _) in &self.hists {
            let count = self.hist_count(name);
            if count > 0 {
                let _ = writeln!(
                    out,
                    "{name:<26}{count:>12}  p50<={} p99<={}",
                    self.hist_quantile(name, 0.5),
                    self.hist_quantile(name, 0.99),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("x");
        let b = m.counter("x");
        assert_eq!(a, b);
        m.add(a, 2);
        m.add(b, 3);
        assert_eq!(m.counter_value("x"), Some(5));
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn frame_diff_subtracts() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("msgs");
        let h = m.histogram("rounds");
        let g = m.gauge("nodes");
        m.add(c, 10);
        m.record(h, 7);
        let before = m.frame();
        m.add(c, 5);
        m.record(h, 7);
        m.record(h, 100);
        m.set(g, 42);
        let d = m.frame().diff(&before);
        assert_eq!(d.counter("msgs"), Some(5));
        assert_eq!(d.hist_count("rounds"), 2);
        assert_eq!(d.gauge("nodes"), Some(42));
        assert!(d.render().contains("msgs"));
    }

    #[test]
    fn quantiles_bound_observations() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat");
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 1000] {
            m.record(h, v);
        }
        let f = m.frame();
        assert!(f.hist_quantile("lat", 0.5) <= 8);
        assert!(f.hist_quantile("lat", 1.0) >= 1000);
    }
}
