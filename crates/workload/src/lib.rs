//! # xheal-workload
//!
//! Adversarial workload machinery for the node insert/delete/repair model:
//! the [`Event`] vocabulary (insertions, deletions, and simultaneous
//! [`Event::DeleteBatch`] bursts — owned by `xheal-core` and re-exported
//! here), [`Adversary`] strategies (random churn, targeted deletion —
//! including articulation-point hunting by the omniscient adversary —
//! growth-only, correlated [`BurstDeletions`] rack-failures, and scripted
//! replays), and the [`run`] driver that feeds any
//! [`xheal_core::HealingEngine`] while tracking the insertion-only
//! reference graph `G'` and aggregating the structured
//! [`xheal_core::Outcome`]s.
//!
//! The [`run_arena`] harness composes all of it into a cross-algorithm
//! shoot-out: [`standard_registry`] builds every engine in the workspace,
//! [`ArenaSchedule::standard`] fixes three seeded adversary tapes, and any
//! [`ArenaScorer`] turns each run into a trade-off [`ArenaMatrix`] cell.
//!
//! # Examples
//!
//! ```
//! use xheal_core::{Xheal, XhealConfig};
//! use xheal_graph::{components, generators};
//! use xheal_workload::{run, DeleteOnly, Targeting};
//!
//! let g0 = generators::cycle(12);
//! let mut healer = Xheal::new(&g0, XhealConfig::default());
//! let mut adversary = DeleteOnly::new(Targeting::HighestDegree, 6);
//! let summary = run(&mut healer, &mut adversary, 100, 42);
//! assert_eq!(summary.deletions, 6);
//! assert!(components::is_connected(healer.graph()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod arena;
mod runner;
mod traffic;

pub use adversary::{
    bfs_rack, Adversary, BurstDeletions, DeleteOnly, InsertOnly, RandomChurn, Scripted, Targeting,
};
pub use arena::{
    run_arena, standard_registry, ArenaCell, ArenaMatrix, ArenaQuality, ArenaSchedule, ArenaScorer,
    NoScorer,
};
pub use runner::{replay, run, run_observed, HealthNote, RunObserver, RunSummary, Severity};
pub use traffic::{
    bfs_distance, greedy_next_hop, ring_distance, route_hops, BfsScratch, RoutingRequest,
    TrafficGen,
};
pub use xheal_core::Event;
