//! Adversarial events of the insert/delete/repair model.

use xheal_graph::NodeId;

/// One adversary move: insert a node with chosen connections, or delete one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Insert `node` with black edges to `neighbors`.
    Insert {
        /// The fresh node id.
        node: NodeId,
        /// Existing nodes it connects to (the adversary picks any subset).
        neighbors: Vec<NodeId>,
    },
    /// Delete `node` and all its edges.
    Delete {
        /// The victim.
        node: NodeId,
    },
}

impl Event {
    /// The node this event concerns.
    pub fn node(&self) -> NodeId {
        match self {
            Event::Insert { node, .. } | Event::Delete { node } => *node,
        }
    }

    /// Is this a deletion?
    pub fn is_delete(&self) -> bool {
        matches!(self, Event::Delete { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = Event::Delete {
            node: NodeId::new(4),
        };
        assert!(e.is_delete());
        assert_eq!(e.node(), NodeId::new(4));
        let i = Event::Insert {
            node: NodeId::new(5),
            neighbors: vec![],
        };
        assert!(!i.is_delete());
        assert_eq!(i.node(), NodeId::new(5));
    }
}
