//! Routed-traffic workload: seeded request streams and greedy overlay
//! routing over a [`CsrView`] snapshot.
//!
//! The paper's guarantees are about the *healed overlay as a routing
//! substrate*: constant-factor degree increase and O(log n) stretch mean
//! traffic keeps flowing after arbitrary churn. This module supplies the
//! traffic side of that claim for the throughput benchmark and any
//! higher-level harness:
//!
//! - [`RoutingRequest`] — the per-message routing state (destination,
//!   hop count, TTL), small and `Copy` so it can ride through a
//!   `xheal_sim` engine as the payload;
//! - [`TrafficGen`] — a seeded source of `(src, dst)` pairs over the
//!   live nodes of a snapshot;
//! - [`greedy_next_hop`] / [`route_hops`] — greedy clockwise-ring-distance
//!   forwarding (the classic routing rule of chord-style overlays, see
//!   [`xheal_graph::generators::ring_with_chords`]) with a deterministic
//!   escape hop at local minima, which churn holes create;
//! - [`bfs_distance`] — the shortest-path baseline that turns observed
//!   route lengths into stretch.
//!
//! Everything is deterministic: the generator is seeded and the escape
//! hop is a hash, so a traffic run is exactly reproducible.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xheal_graph::{CsrView, NodeId};

/// Per-message routing state carried through the engine: where the
/// request is going, how far it has come, how many hops it may still
/// take before it is declared lost, and when it entered the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoutingRequest {
    /// Destination node.
    pub dst: NodeId,
    /// Hops taken so far.
    pub hops: u32,
    /// Remaining hop budget.
    pub ttl: u32,
    /// Engine tick the request was injected at. Completion tick minus
    /// `born` is the request's end-to-end tick latency (hops *and* link
    /// delays), the quantity behind the benchmark's latency percentiles.
    pub born: u64,
}

/// Seeded source of routing pairs over a snapshot's live nodes.
#[derive(Clone, Debug)]
pub struct TrafficGen {
    rng: StdRng,
}

impl TrafficGen {
    /// A generator reproducing the same request stream for the same seed.
    pub fn new(seed: u64) -> Self {
        TrafficGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a uniform `(src, dst)` pair of **distinct dense indices**
    /// into `csr`.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot has fewer than two nodes.
    pub fn pair(&mut self, csr: &CsrView) -> (usize, usize) {
        assert!(csr.len() >= 2, "routing needs at least two nodes");
        let src = self.rng.random_range(0..csr.len());
        let mut dst = self.rng.random_range(0..csr.len() - 1);
        if dst >= src {
            dst += 1;
        }
        (src, dst)
    }
}

/// Clockwise-or-counterclockwise distance between two ids on the identifier
/// ring of size `ring` (the original overlay size; deleted ids leave holes
/// but survivors keep their ring positions).
pub fn ring_distance(a: u64, b: u64, ring: u64) -> u64 {
    let d = (a % ring).abs_diff(b % ring);
    d.min(ring - d)
}

/// SplitMix64-style avalanche — the deterministic escape-hop hash.
fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(c);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The next hop of greedy ring-distance routing from dense index `at`
/// toward dense index `dst`: the neighbor closest to `dst` on the id ring
/// when that strictly improves on `at`'s own distance, otherwise a
/// deterministic pseudo-random neighbor (the escape hop out of the local
/// minima churn holes create — vary `salt`, e.g. by hop count, so
/// repeated escapes explore different directions). Returns `None` when
/// `at == dst` or `at` has no neighbors.
pub fn greedy_next_hop(
    csr: &CsrView,
    at: usize,
    dst: usize,
    ring: u64,
    salt: u64,
) -> Option<usize> {
    if at == dst {
        return None;
    }
    let neighbors = csr.neighbors_of(at);
    if neighbors.is_empty() {
        return None;
    }
    let dst_id = csr.node(dst).as_u64();
    let mut best = (u64::MAX, 0usize);
    for &j in neighbors {
        let d = ring_distance(csr.node(j as usize).as_u64(), dst_id, ring);
        if d < best.0 {
            best = (d, j as usize);
        }
    }
    if best.0 < ring_distance(csr.node(at).as_u64(), dst_id, ring) {
        Some(best.1)
    } else {
        let pick = mix(at as u64, dst_id, salt) as usize % neighbors.len();
        Some(neighbors[pick] as usize)
    }
}

/// Routes `src → dst` greedily over the snapshot, returning the hop count
/// on success or `None` when the TTL ran out (or a dead end was hit) —
/// the offline twin of the engine-driven forwarding loop, used to sample
/// observed stretch.
pub fn route_hops(csr: &CsrView, src: usize, dst: usize, ring: u64, ttl: u32) -> Option<u32> {
    let mut at = src;
    for hop in 1..=ttl {
        at = greedy_next_hop(csr, at, dst, ring, u64::from(hop))?;
        if at == dst {
            return Some(hop);
        }
    }
    None
}

/// Reusable breadth-first-search buffers for [`bfs_distance`].
#[derive(Clone, Debug, Default)]
pub struct BfsScratch {
    dist: Vec<u32>,
    queue: VecDeque<u32>,
}

/// Unweighted shortest-path distance between dense indices over the
/// snapshot (`None` when disconnected) — the baseline that observed route
/// lengths are divided by to get stretch.
pub fn bfs_distance(
    csr: &CsrView,
    src: usize,
    dst: usize,
    scratch: &mut BfsScratch,
) -> Option<u32> {
    if src == dst {
        return Some(0);
    }
    scratch.dist.clear();
    scratch.dist.resize(csr.len(), u32::MAX);
    scratch.queue.clear();
    scratch.dist[src] = 0;
    scratch.queue.push_back(src as u32);
    while let Some(u) = scratch.queue.pop_front() {
        let du = scratch.dist[u as usize];
        for &j in csr.neighbors_of(u as usize) {
            if scratch.dist[j as usize] == u32::MAX {
                if j as usize == dst {
                    return Some(du + 1);
                }
                scratch.dist[j as usize] = du + 1;
                scratch.queue.push_back(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use xheal_graph::generators;

    #[test]
    fn ring_distance_wraps_both_ways() {
        assert_eq!(ring_distance(0, 1, 16), 1);
        assert_eq!(ring_distance(0, 15, 16), 1);
        assert_eq!(ring_distance(3, 11, 16), 8);
        assert_eq!(ring_distance(5, 5, 16), 0);
    }

    #[test]
    fn greedy_routes_a_chord_ring_in_log_hops() {
        let n = 64usize;
        let csr = generators::ring_with_chords(n).csr_view();
        let budget = 2 * n.ilog2();
        let mut scratch = BfsScratch::default();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let hops = route_hops(&csr, src, dst, n as u64, 4 * budget)
                    .unwrap_or_else(|| panic!("{src}->{dst} undeliverable"));
                assert!(hops <= budget, "{src}->{dst}: {hops} hops > {budget}");
                let shortest = bfs_distance(&csr, src, dst, &mut scratch).expect("connected");
                assert!(hops >= shortest, "greedy beat BFS");
            }
        }
    }

    #[test]
    fn greedy_survives_churn_holes_via_escape_hops() {
        // Punch holes in the ring, heal nothing, and route between
        // survivors: greedy alone would die in local minima; the escape
        // hop must still deliver well within an O(log^2) budget.
        let n = 128usize;
        let mut g = generators::ring_with_chords(n);
        for dead in [3u64, 4, 5, 64, 65, 100] {
            g.remove_node(NodeId::new(dead)).expect("live");
        }
        let csr = g.csr_view();
        let mut gen = TrafficGen::new(9);
        let mut delivered = 0;
        for _ in 0..200 {
            let (src, dst) = gen.pair(&csr);
            if route_hops(&csr, src, dst, n as u64, 64).is_some() {
                delivered += 1;
            }
        }
        assert!(delivered >= 195, "only {delivered}/200 delivered");
    }

    #[test]
    fn bfs_distance_on_a_cycle_is_the_arc_length() {
        let csr = generators::cycle(10).csr_view();
        let mut scratch = BfsScratch::default();
        assert_eq!(bfs_distance(&csr, 0, 5, &mut scratch), Some(5));
        assert_eq!(bfs_distance(&csr, 0, 7, &mut scratch), Some(3));
        assert_eq!(bfs_distance(&csr, 2, 2, &mut scratch), Some(0));
    }

    #[test]
    fn traffic_gen_is_deterministic_and_distinct() {
        let csr = generators::cycle(20).csr_view();
        let draw = |seed| {
            let mut gen = TrafficGen::new(seed);
            (0..50).map(|_| gen.pair(&csr)).collect::<Vec<_>>()
        };
        let a = draw(7);
        assert_eq!(a, draw(7));
        assert_ne!(a, draw(8));
        assert!(a.iter().all(|&(s, d)| s != d && s < 20 && d < 20));
    }
}
