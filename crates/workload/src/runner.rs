//! Drives a healer through an adversary's events, tracking `G'` alongside.

use rand::rngs::StdRng;
use rand::SeedableRng;

use xheal_core::Healer;
use xheal_graph::Graph;

use crate::adversary::Adversary;
use crate::event::Event;

/// Outcome of a run: the insertion-only reference graph and event counts.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// The insertion-only graph `G'` after the run.
    pub gprime: Graph,
    /// Events applied (in order).
    pub events: Vec<Event>,
    /// Number of insertions applied.
    pub insertions: usize,
    /// Number of deletions applied.
    pub deletions: usize,
}

/// Runs `adversary` against `healer` for at most `steps` events, maintaining
/// `G'` (insertions only, no deletions) for the success metrics.
///
/// The adversary's randomness comes from `seed` — disjoint from the healer's
/// internal randomness, which the model requires the adversary not to see.
///
/// # Panics
///
/// Panics if the adversary produces an invalid event (deleting an absent
/// node, inserting a duplicate): adversaries are trusted test machinery.
pub fn run(
    healer: &mut dyn Healer,
    adversary: &mut dyn Adversary,
    steps: usize,
    seed: u64,
) -> RunSummary {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gprime = healer.graph().clone();
    let mut events = Vec::new();
    let mut insertions = 0;
    let mut deletions = 0;

    for _ in 0..steps {
        let Some(event) = adversary.next_event(healer.graph(), &mut rng) else {
            break;
        };
        match &event {
            Event::Insert { node, neighbors } => {
                healer
                    .on_insert(*node, neighbors)
                    .unwrap_or_else(|e| panic!("adversary produced bad insert: {e}"));
                gprime.add_node(*node).expect("fresh in gprime");
                for &u in neighbors {
                    let _ = gprime.add_black_edge(*node, u);
                }
                insertions += 1;
            }
            Event::Delete { node } => {
                healer
                    .on_delete(*node)
                    .unwrap_or_else(|e| panic!("adversary produced bad delete: {e}"));
                deletions += 1;
            }
            Event::DeleteBatch { nodes } => {
                healer
                    .on_delete_batch(nodes)
                    .unwrap_or_else(|e| panic!("adversary produced bad batch: {e}"));
                deletions += nodes.len();
            }
        }
        events.push(event);
    }

    RunSummary {
        gprime,
        events,
        insertions,
        deletions,
    }
}

/// Replays a recorded event list against a healer (for cross-validation of
/// the centralized and distributed implementations on identical schedules).
///
/// # Panics
///
/// Panics on invalid events, as in [`run`].
pub fn replay(healer: &mut dyn Healer, events: &[Event]) {
    for event in events {
        match event {
            Event::Insert { node, neighbors } => healer
                .on_insert(*node, neighbors)
                .unwrap_or_else(|e| panic!("replay bad insert: {e}")),
            Event::Delete { node } => healer
                .on_delete(*node)
                .unwrap_or_else(|e| panic!("replay bad delete: {e}")),
            Event::DeleteBatch { nodes } => healer
                .on_delete_batch(nodes)
                .unwrap_or_else(|e| panic!("replay bad batch: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{DeleteOnly, RandomChurn, Targeting};
    use xheal_core::{Xheal, XhealConfig};
    use xheal_graph::{components, generators};

    #[test]
    fn run_tracks_gprime_and_counts() {
        let g0 = generators::connected_erdos_renyi(20, 0.15, &mut StdRng::seed_from_u64(1));
        let mut healer = Xheal::new(&g0, XhealConfig::new(4).with_seed(7));
        let mut adv = RandomChurn::new(0.5, 3, 4, &g0);
        let summary = run(&mut healer, &mut adv, 40, 99);
        assert_eq!(summary.insertions + summary.deletions, summary.events.len());
        assert_eq!(summary.events.len(), 40);
        // G' has exactly initial + inserted nodes.
        assert_eq!(summary.gprime.node_count(), 20 + summary.insertions);
        assert!(components::is_connected(healer.graph()));
    }

    #[test]
    fn delete_only_run_stops_at_min() {
        let g0 = generators::cycle(10);
        let mut healer = Xheal::new(&g0, XhealConfig::default());
        let mut adv = DeleteOnly::new(Targeting::Random, 5);
        let summary = run(&mut healer, &mut adv, 100, 3);
        assert_eq!(summary.deletions, 5);
        assert_eq!(healer.graph().node_count(), 5);
    }

    #[test]
    fn burst_run_heals_batches_and_counts_victims() {
        use crate::adversary::BurstDeletions;
        let g0 = generators::connected_erdos_renyi(30, 0.12, &mut StdRng::seed_from_u64(4));
        let mut healer = Xheal::new(&g0, XhealConfig::new(4).with_seed(8));
        let mut adv = BurstDeletions::new(3, 4, 2, 8, &g0);
        let summary = run(&mut healer, &mut adv, 24, 77);
        assert!(
            summary.deletions > summary.events.iter().filter(|e| e.is_delete()).count(),
            "batches count every victim"
        );
        assert!(components::is_connected(healer.graph()));
        // Replay drives the same batches through on_delete_batch.
        let mut b = Xheal::new(&g0, XhealConfig::new(4).with_seed(8));
        replay(&mut b, &summary.events);
        assert_eq!(healer.graph(), b.graph());
    }

    #[test]
    fn replay_reproduces_topology() {
        let g0 = generators::connected_erdos_renyi(16, 0.2, &mut StdRng::seed_from_u64(2));
        let mut a = Xheal::new(&g0, XhealConfig::new(4).with_seed(5));
        let mut adv = RandomChurn::new(0.4, 2, 3, &g0);
        let summary = run(&mut a, &mut adv, 30, 11);

        // Same healer seed + same events => identical graphs.
        let mut b = Xheal::new(&g0, XhealConfig::new(4).with_seed(5));
        replay(&mut b, &summary.events);
        assert_eq!(a.graph(), b.graph());
    }
}
