//! Drives a healing engine through an adversary's events, tracking `G'`
//! alongside and aggregating the structured outcomes.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xheal_core::{Event, HealingEngine, Outcome};
use xheal_graph::Graph;

use crate::adversary::Adversary;

/// Severity of a [`HealthNote`] recorded during a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational (checkpoints, recoveries).
    Info,
    /// A monitored invariant is degrading toward its threshold.
    Warning,
    /// A monitored invariant is violated.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Critical => write!(f, "critical"),
        }
    }
}

/// One health observation recorded into a [`RunSummary`] by a
/// [`RunObserver`] (e.g. the `xheal-monitor` invariant monitor).
#[derive(Clone, Debug)]
pub struct HealthNote {
    /// Index of the event (0-based, in application order) the note follows.
    pub step: usize,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description of the observation.
    pub message: String,
}

/// Observer hook for [`run_observed`]: called after every applied event
/// with the structured outcome and the engine's post-repair graph.
///
/// Implemented by `xheal-monitor`'s run hook to evaluate live invariant
/// metrics per event; the notes it drains at the end of the run land in
/// [`RunSummary::health`].
pub trait RunObserver {
    /// Called after `event` was applied (and healed) by the engine.
    fn on_event(&mut self, step: usize, event: &Event, outcome: &Outcome, graph: &Graph);

    /// Health observations accumulated so far, drained into the summary
    /// when the run ends.
    fn drain_notes(&mut self) -> Vec<HealthNote> {
        Vec::new()
    }
}

/// The no-op observer behind plain [`run`].
struct NoObserver;

impl RunObserver for NoObserver {
    fn on_event(&mut self, _: usize, _: &Event, _: &Outcome, _: &Graph) {}
}

/// Outcome of a run: the insertion-only reference graph, event counts, and
/// the costs aggregated from every applied event's [`Outcome`].
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// The insertion-only graph `G'` after the run.
    pub gprime: Graph,
    /// Events applied (in order).
    pub events: Vec<Event>,
    /// Number of insertions applied.
    pub insertions: usize,
    /// Number of deletions applied (batch events count every victim).
    pub deletions: usize,
    /// Colored edges added by repairs across the run.
    pub edges_added: usize,
    /// Colored-edge labels stripped by repairs across the run.
    pub edges_removed: usize,
    /// Wall-clock protocol rounds spent healing (0 for centralized
    /// engines, which report no [`xheal_core::DistCost`]).
    pub rounds: u64,
    /// Protocol messages delivered while healing (0 for centralized
    /// engines).
    pub messages: u64,
    /// The share of [`RunSummary::rounds`] attributable to insertions —
    /// nonzero only for engines whose insertions rewire (DEX virtual-node
    /// splits and spare takeovers).
    pub insert_rounds: u64,
    /// The share of [`RunSummary::messages`] attributable to insertions.
    pub insert_messages: u64,
    /// Health observations recorded by the [`RunObserver`] (empty for
    /// unobserved runs).
    pub health: Vec<HealthNote>,
}

impl RunSummary {
    fn new(gprime: Graph) -> Self {
        RunSummary {
            gprime,
            events: Vec::new(),
            insertions: 0,
            deletions: 0,
            edges_added: 0,
            edges_removed: 0,
            rounds: 0,
            messages: 0,
            insert_rounds: 0,
            insert_messages: 0,
            health: Vec::new(),
        }
    }

    /// Worst severity recorded during the run, if any note was.
    pub fn worst_severity(&self) -> Option<Severity> {
        self.health.iter().map(|n| n.severity).max()
    }

    /// Folds one applied event's outcome into the aggregates; `G'` grows on
    /// insertions (deletions never touch it, per the model).
    fn absorb(&mut self, event: &Event, outcome: &Outcome) {
        match outcome {
            Outcome::Inserted { cost } => {
                let Event::Insert { node, neighbors } = event else {
                    unreachable!("engines report Inserted only for Event::Insert");
                };
                self.gprime.add_node(*node).expect("fresh in gprime");
                for &u in neighbors {
                    let _ = self.gprime.add_black_edge(*node, u);
                }
                self.insertions += 1;
                if let Some(c) = cost {
                    self.insert_rounds += c.rounds;
                    self.insert_messages += c.messages;
                }
            }
            Outcome::Healed { .. } | Outcome::Batch { .. } => {
                self.deletions += outcome.victims();
            }
        }
        self.edges_added += outcome.edges_added();
        self.edges_removed += outcome.edges_removed();
        if let Some(cost) = outcome.cost() {
            self.rounds += cost.rounds;
            self.messages += cost.messages;
        }
    }
}

/// Runs `adversary` against `engine` for at most `steps` events,
/// maintaining `G'` (insertions only, no deletions) from the returned
/// [`Outcome`]s for the success metrics.
///
/// The adversary's randomness comes from `seed` — disjoint from the
/// engine's internal randomness, which the model requires the adversary not
/// to see.
///
/// Generic over [`HealingEngine`], so it accepts `&mut Xheal`, any
/// `&mut DistXheal<_>`, every baseline, and `Box<dyn HealingEngine>`
/// contents alike.
///
/// # Panics
///
/// Panics if the adversary produces an invalid event (deleting an absent
/// node, inserting a duplicate): adversaries are trusted test machinery.
pub fn run<E: HealingEngine + ?Sized>(
    engine: &mut E,
    adversary: &mut dyn Adversary,
    steps: usize,
    seed: u64,
) -> RunSummary {
    run_observed(engine, adversary, steps, seed, &mut NoObserver)
}

/// Like [`run`], with a [`RunObserver`] hook called after every applied
/// event — the attachment point for live invariant monitors. The observer's
/// drained [`HealthNote`]s are recorded into [`RunSummary::health`].
///
/// # Panics
///
/// Panics on invalid adversary events, as in [`run`].
pub fn run_observed<E: HealingEngine + ?Sized>(
    engine: &mut E,
    adversary: &mut dyn Adversary,
    steps: usize,
    seed: u64,
    observer: &mut dyn RunObserver,
) -> RunSummary {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut summary = RunSummary::new(engine.graph().clone());

    for step in 0..steps {
        let Some(event) = adversary.next_event(engine.graph(), &mut rng) else {
            break;
        };
        let outcome = engine
            .apply(&event)
            .unwrap_or_else(|e| panic!("adversary produced bad event: {e}"));
        observer.on_event(step, &event, &outcome, engine.graph());
        summary.absorb(&event, &outcome);
        summary.events.push(event);
    }

    summary.health = observer.drain_notes();
    summary
}

/// Replays a recorded event list against a healing engine (for
/// cross-validation of the centralized and distributed implementations on
/// identical schedules).
///
/// # Panics
///
/// Panics on invalid events, as in [`run`].
pub fn replay<E: HealingEngine + ?Sized>(engine: &mut E, events: &[Event]) {
    for event in events {
        engine
            .apply(event)
            .unwrap_or_else(|e| panic!("replay bad event: {e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{DeleteOnly, RandomChurn, Targeting};
    use xheal_core::{Xheal, XhealConfig};
    use xheal_graph::{components, generators};

    #[test]
    fn run_tracks_gprime_and_counts() {
        let g0 = generators::connected_erdos_renyi(20, 0.15, &mut StdRng::seed_from_u64(1));
        let mut healer = Xheal::new(&g0, XhealConfig::new(4).with_seed(7));
        let mut adv = RandomChurn::new(0.5, 3, 4, &g0);
        let summary = run(&mut healer, &mut adv, 40, 99);
        assert_eq!(summary.insertions + summary.deletions, summary.events.len());
        assert_eq!(summary.events.len(), 40);
        // G' has exactly initial + inserted nodes.
        assert_eq!(summary.gprime.node_count(), 20 + summary.insertions);
        assert!(components::is_connected(healer.graph()));
        // Aggregates mirror the healer's own statistics.
        assert_eq!(summary.edges_added, healer.stats().edges_added);
        assert_eq!(summary.edges_removed, healer.stats().edges_removed);
        // A centralized engine reports no protocol cost.
        assert_eq!((summary.rounds, summary.messages), (0, 0));
    }

    #[test]
    fn delete_only_run_stops_at_min() {
        let g0 = generators::cycle(10);
        let mut healer = Xheal::new(&g0, XhealConfig::default());
        let mut adv = DeleteOnly::new(Targeting::Random, 5);
        let summary = run(&mut healer, &mut adv, 100, 3);
        assert_eq!(summary.deletions, 5);
        assert_eq!(healer.graph().node_count(), 5);
    }

    #[test]
    fn burst_run_heals_batches_and_counts_victims() {
        use crate::adversary::BurstDeletions;
        let g0 = generators::connected_erdos_renyi(30, 0.12, &mut StdRng::seed_from_u64(4));
        let mut healer = Xheal::new(&g0, XhealConfig::new(4).with_seed(8));
        let mut adv = BurstDeletions::new(3, 4, 2, 8, &g0);
        let summary = run(&mut healer, &mut adv, 24, 77);
        assert!(
            summary.deletions > summary.events.iter().filter(|e| e.is_delete()).count(),
            "batches count every victim"
        );
        assert!(components::is_connected(healer.graph()));
        // Replay drives the same batches through apply().
        let mut b = Xheal::new(&g0, XhealConfig::new(4).with_seed(8));
        replay(&mut b, &summary.events);
        assert_eq!(healer.graph(), b.graph());
    }

    #[test]
    fn replay_reproduces_topology() {
        let g0 = generators::connected_erdos_renyi(16, 0.2, &mut StdRng::seed_from_u64(2));
        let mut a = Xheal::new(&g0, XhealConfig::new(4).with_seed(5));
        let mut adv = RandomChurn::new(0.4, 2, 3, &g0);
        let summary = run(&mut a, &mut adv, 30, 11);

        // Same healer seed + same events => identical graphs.
        let mut b = Xheal::new(&g0, XhealConfig::new(4).with_seed(5));
        replay(&mut b, &summary.events);
        assert_eq!(a.graph(), b.graph());
    }

    #[test]
    fn observer_sees_every_event_and_notes_land_in_summary() {
        struct Counter {
            seen: usize,
            victims: usize,
        }
        impl RunObserver for Counter {
            fn on_event(&mut self, step: usize, _: &Event, outcome: &Outcome, graph: &Graph) {
                assert_eq!(step, self.seen, "steps arrive in order");
                self.seen += 1;
                self.victims += outcome.victims();
                assert!(graph.node_count() > 0, "post-repair graph is live");
            }
            fn drain_notes(&mut self) -> Vec<HealthNote> {
                vec![HealthNote {
                    step: self.seen,
                    severity: Severity::Info,
                    message: format!("{} victims", self.victims),
                }]
            }
        }
        let g0 = generators::cycle(12);
        let mut healer = Xheal::new(&g0, XhealConfig::default());
        let mut adv = DeleteOnly::new(Targeting::Random, 5);
        let mut obs = Counter {
            seen: 0,
            victims: 0,
        };
        let summary = run_observed(&mut healer, &mut adv, 100, 9, &mut obs);
        // The adversary deletes down to its 5-node floor: 7 deletions.
        assert_eq!(summary.events.len(), 7);
        assert_eq!(summary.health.len(), 1);
        assert_eq!(summary.health[0].message, "7 victims");
        assert_eq!(summary.worst_severity(), Some(Severity::Info));
        assert!(Severity::Info < Severity::Warning && Severity::Warning < Severity::Critical);
    }

    #[test]
    fn run_accepts_boxed_trait_objects() {
        let g0 = generators::cycle(12);
        let mut engine: Box<dyn HealingEngine> = Box::new(Xheal::new(&g0, XhealConfig::default()));
        let mut adv = DeleteOnly::new(Targeting::Random, 6);
        let summary = run(engine.as_mut(), &mut adv, 100, 5);
        assert_eq!(summary.deletions, 6);
        assert!(components::is_connected(engine.graph()));
    }
}
