//! The engine arena: every healing engine, identical adversary schedules,
//! one trade-off matrix.
//!
//! The `HealingEngine` trait plus the seeded [`Adversary`] strategies make a
//! cross-algorithm shoot-out nearly free to wire: build a fresh engine of
//! every flavor over one initial graph ([`standard_registry`] knows all ten),
//! drive each through the same seeded schedules ([`ArenaSchedule::standard`]
//! gives uniform churn, clustered bursts, and insert-heavy growth), and
//! score each run with an [`ArenaScorer`] — `xheal-monitor` implements one
//! live on degree increase, stretch, expansion, and spectral gap; the
//! dependency-free [`NoScorer`] records topology basics only.
//!
//! The output [`ArenaMatrix`] is healing *cost* (rounds, messages, edge
//! operations) against invariant *quality* per engine per adversary — the
//! head-to-head measurement the Xheal/DEX paper family never ran.
//!
//! Two caveats the numbers only mean something with:
//!
//! - Schedules are *identically seeded*, not identically materialized:
//!   uniform churn and insert-heavy growth pick victims and contact points
//!   by membership only, so their event streams are bit-identical across
//!   engines; clustered bursts gather BFS racks over each engine's healed
//!   topology, so victim *sets* legitimately differ per engine while the
//!   burst cadence and seeds stay fixed.
//! - Reference-relative metrics (degree increase, stretch) are scored
//!   against each engine's own reference graph: the engine's graph at
//!   attach time plus black insertion edges. For nine engines that is the
//!   shared `G'`; DEX rebuilds topology at construction, so its reference
//!   is its own bootstrap projection.
//!
//! # Examples
//!
//! ```
//! use xheal_graph::generators;
//! use xheal_workload::{run_arena, ArenaSchedule, NoScorer, standard_registry};
//!
//! let g0 = generators::ring_with_chords(24);
//! let reg = standard_registry(4);
//! let matrix = run_arena(&reg, &ArenaSchedule::standard(12), &g0, 7, |_, _, _| NoScorer);
//! assert_eq!(matrix.cells.len(), reg.len() * 3);
//! ```

use std::time::Instant;

use crate::adversary::{Adversary, BurstDeletions, InsertOnly, RandomChurn};
use crate::runner::{run_observed, RunObserver, RunSummary, Severity};
use xheal_baselines::{BinaryTreeHeal, CycleHeal, ForgivingLike, NoHeal, StarHeal};
use xheal_core::{EngineRegistry, HealingEngine, Xheal};
use xheal_dex::{Dex, DexConfig};
use xheal_dist::{DistXheal, Msg};
use xheal_graph::{components, Graph};
use xheal_sim::{AsyncConfig, AsyncNetwork};

/// One adversary schedule of the arena: a named, seeded event-stream shape.
#[derive(Clone, Copy, Debug)]
pub struct ArenaSchedule {
    /// Stable schedule name (a column key of `BENCH_arena.json`).
    pub name: &'static str,
    /// Maximum events the schedule feeds each engine.
    pub steps: usize,
    kind: ScheduleKind,
}

#[derive(Clone, Copy, Debug)]
enum ScheduleKind {
    /// Balanced insert/delete churn, victims uniform over membership.
    UniformChurn,
    /// Growth punctuated by clustered `DeleteBatch` racks (BFS holes).
    ClusteredBursts,
    /// Pure growth: insertions only.
    InsertHeavy,
}

impl ArenaSchedule {
    /// Balanced uniform churn (~45% inserts, uniform single deletions).
    pub fn uniform_churn(steps: usize) -> Self {
        ArenaSchedule {
            name: "uniform-churn",
            steps,
            kind: ScheduleKind::UniformChurn,
        }
    }

    /// Insert-leaning growth punctured by clustered rack deletions: every
    /// fourth event batch-deletes a BFS rack of 5.
    pub fn clustered_bursts(steps: usize) -> Self {
        ArenaSchedule {
            name: "clustered-bursts",
            steps,
            kind: ScheduleKind::ClusteredBursts,
        }
    }

    /// Insertions only — measures what maintenance costs when nothing dies.
    pub fn insert_heavy(steps: usize) -> Self {
        ArenaSchedule {
            name: "insert-heavy",
            steps,
            kind: ScheduleKind::InsertHeavy,
        }
    }

    /// The canonical three-schedule arena sweep.
    pub fn standard(steps: usize) -> Vec<ArenaSchedule> {
        vec![
            Self::uniform_churn(steps),
            Self::clustered_bursts(steps),
            Self::insert_heavy(steps),
        ]
    }

    /// Instantiates this schedule's adversary over `g0`.
    pub fn adversary(&self, g0: &Graph) -> Box<dyn Adversary> {
        match self.kind {
            ScheduleKind::UniformChurn => Box::new(RandomChurn::new(0.45, 4, 8, g0)),
            ScheduleKind::ClusteredBursts => Box::new(BurstDeletions::new(5, 4, 4, 8, g0)),
            ScheduleKind::InsertHeavy => Box::new(InsertOnly::new(3, g0)),
        }
    }

    /// The adversary seed for this schedule under arena seed `base`: fixed
    /// per schedule so every engine faces the same random tape.
    pub fn seed(&self, base: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base;
        for b in self.name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Invariant-quality readings of one finished arena cell. `None` marks a
/// metric the scorer does not measure.
#[derive(Clone, Debug, Default)]
pub struct ArenaQuality {
    /// Largest node degree in the final graph.
    pub max_degree: usize,
    /// Worst degree over the engine's reference-graph degree (the paper's
    /// degree-increase metric), when the scorer tracks a reference.
    pub degree_increase: Option<f64>,
    /// Sampled stretch of reference adjacency in the final graph.
    pub stretch: Option<f64>,
    /// Edge-expansion estimate of the final graph.
    pub expansion: Option<f64>,
    /// Algebraic connectivity λ₂ of the final normalized Laplacian.
    pub spectral_gap: Option<f64>,
    /// Second-order drift: λ₃ of the final normalized Laplacian.
    pub lambda3: Option<f64>,
    /// Connected components of the final graph (1 = healed connectivity).
    pub components: usize,
    /// Warning-severity health notes recorded during the run.
    pub warn_notes: usize,
    /// Critical-severity health notes recorded during the run.
    pub critical_notes: usize,
}

/// A per-run scorer: observes every applied event (it is a [`RunObserver`]),
/// may subscribe topology sinks at attach time, and distills an
/// [`ArenaQuality`] when the run finishes.
pub trait ArenaScorer: RunObserver {
    /// Called once before the run with the freshly built engine (subscribe
    /// sinks here; the engine's graph is its post-construction state).
    fn attach(&mut self, engine: &mut dyn HealingEngine);

    /// Called once after the run with the engine's final graph and the
    /// run summary.
    fn finish(&mut self, graph: &Graph, summary: &RunSummary) -> ArenaQuality;
}

/// The dependency-free scorer: records final topology basics (max degree,
/// components, note counts) and measures nothing reference-relative or
/// spectral. The monitor-backed scorer lives with the arena bench bin.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoScorer;

impl RunObserver for NoScorer {
    fn on_event(&mut self, _: usize, _: &xheal_core::Event, _: &xheal_core::Outcome, _: &Graph) {}
}

impl ArenaScorer for NoScorer {
    fn attach(&mut self, _engine: &mut dyn HealingEngine) {}

    fn finish(&mut self, graph: &Graph, summary: &RunSummary) -> ArenaQuality {
        ArenaQuality {
            max_degree: graph
                .node_vec()
                .iter()
                .filter_map(|&v| graph.degree(v))
                .max()
                .unwrap_or(0),
            components: components::components(graph).len(),
            warn_notes: summary
                .health
                .iter()
                .filter(|n| n.severity == Severity::Warning)
                .count(),
            critical_notes: summary
                .health
                .iter()
                .filter(|n| n.severity == Severity::Critical)
                .count(),
            ..ArenaQuality::default()
        }
    }
}

/// One engine × schedule cell of the trade-off matrix: healing cost on the
/// left, invariant quality on the right.
#[derive(Clone, Debug)]
pub struct ArenaCell {
    /// Registry key of the engine (distinct even where engine names
    /// collide, e.g. the two distributed substrates).
    pub engine: String,
    /// Schedule name.
    pub schedule: &'static str,
    /// Events actually applied (schedules may exhaust early).
    pub steps_applied: usize,
    /// Insertions applied.
    pub insertions: usize,
    /// Deletions applied (batch victims all count).
    pub deletions: usize,
    /// Repair edges added across the run.
    pub edges_added: usize,
    /// Repair edge labels stripped across the run.
    pub edges_removed: usize,
    /// Protocol rounds spent healing (0 for engines reporting no cost).
    pub rounds: u64,
    /// Protocol messages spent healing (0 for engines reporting no cost).
    pub messages: u64,
    /// The share of [`ArenaCell::rounds`] attributable to insertions
    /// (DEX reconfiguration; 0 for engines whose insertions are free).
    pub insert_rounds: u64,
    /// The share of [`ArenaCell::messages`] attributable to insertions.
    pub insert_messages: u64,
    /// Node count of the final graph.
    pub nodes: usize,
    /// Edge count of the final graph.
    pub edges: usize,
    /// Wall-clock nanoseconds of the engine+scorer run.
    pub wall_nanos: u128,
    /// The scorer's quality readings.
    pub quality: ArenaQuality,
}

/// The full trade-off matrix of one arena sweep.
#[derive(Clone, Debug)]
pub struct ArenaMatrix {
    /// Node count of the shared initial graph.
    pub n0: usize,
    /// Base seed of the sweep.
    pub seed: u64,
    /// All cells, schedule-major then engine (registry key) order.
    pub cells: Vec<ArenaCell>,
}

impl ArenaMatrix {
    /// Looks up one cell by registry key and schedule name.
    pub fn cell(&self, engine: &str, schedule: &str) -> Option<&ArenaCell> {
        self.cells
            .iter()
            .find(|c| c.engine == engine && c.schedule == schedule)
    }

    /// Distinct engine keys, ascending.
    pub fn engines(&self) -> Vec<&str> {
        let mut keys: Vec<&str> = self.cells.iter().map(|c| c.engine.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Distinct schedule names in first-seen order.
    pub fn schedules(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !names.contains(&c.schedule) {
                names.push(c.schedule);
            }
        }
        names
    }

    /// Whether every engine × schedule combination is present exactly once.
    pub fn is_complete(&self) -> bool {
        let engines = self.engines();
        let schedules = self.schedules();
        self.cells.len() == engines.len() * schedules.len()
            && engines.iter().all(|e| {
                schedules.iter().all(|s| {
                    self.cells
                        .iter()
                        .filter(|c| c.engine == *e && c.schedule == *s)
                        .count()
                        == 1
                })
            })
    }
}

/// Runs every registered engine through every schedule, scoring each cell
/// with a fresh scorer from `make_scorer` (called with the registry key, the
/// schedule, and the engine's post-construction graph).
///
/// Engines are seeded with `seed`; each schedule's adversary tape is fixed
/// across engines via [`ArenaSchedule::seed`].
pub fn run_arena<S, F>(
    registry: &EngineRegistry,
    schedules: &[ArenaSchedule],
    g0: &Graph,
    seed: u64,
    mut make_scorer: F,
) -> ArenaMatrix
where
    S: ArenaScorer,
    F: FnMut(&str, &ArenaSchedule, &Graph) -> S,
{
    let mut cells = Vec::new();
    for sched in schedules {
        for key in registry.keys() {
            let mut engine = registry.build(key, g0, seed).expect("registered key");
            let mut scorer = make_scorer(key, sched, engine.graph());
            scorer.attach(engine.as_mut());
            let mut adversary = sched.adversary(g0);
            let start = Instant::now();
            let summary = run_observed(
                engine.as_mut(),
                adversary.as_mut(),
                sched.steps,
                sched.seed(seed),
                &mut scorer,
            );
            let wall_nanos = start.elapsed().as_nanos();
            let quality = scorer.finish(engine.graph(), &summary);
            cells.push(ArenaCell {
                engine: key.to_string(),
                schedule: sched.name,
                steps_applied: summary.events.len(),
                insertions: summary.insertions,
                deletions: summary.deletions,
                edges_added: summary.edges_added,
                edges_removed: summary.edges_removed,
                rounds: summary.rounds,
                messages: summary.messages,
                insert_rounds: summary.insert_rounds,
                insert_messages: summary.insert_messages,
                nodes: engine.graph().node_count(),
                edges: engine.graph().edge_count(),
                wall_nanos,
                quality,
            });
        }
    }
    ArenaMatrix {
        n0: g0.node_count(),
        seed,
        cells,
    }
}

/// All ten engines of the workspace, keyed distinctly:
///
/// `binary-tree-heal`, `cycle-heal`, `dex`, `forgiving-like`, `no-heal`,
/// `star-heal`, `xheal`, `xheal-dist-async`, `xheal-dist-sync`, `xheal-par`.
///
/// `kappa` parameterizes the Xheal family; seeds are passed through from the
/// arena. The async distributed engine runs uniform 1–3 tick latency seeded
/// from the engine seed; DEX runs its default degree-8 / load-3 overlay.
pub fn standard_registry(kappa: usize) -> EngineRegistry {
    let mut reg = EngineRegistry::new();
    reg.register("xheal", move |g, s| {
        Box::new(Xheal::builder().kappa(kappa).seed(s).build(g))
    });
    reg.register("xheal-par", move |g, s| {
        Box::new(Xheal::builder().kappa(kappa).seed(s).build_parallel(g, 2))
    });
    reg.register("xheal-dist-sync", move |g, s| {
        Box::new(DistXheal::builder().kappa(kappa).seed(s).build(g))
    });
    reg.register("xheal-dist-async", move |g, s| {
        Box::new(
            DistXheal::builder()
                .kappa(kappa)
                .seed(s)
                .engine(AsyncNetwork::<Msg>::new(AsyncConfig::uniform(1, 3, s)))
                .build(g),
        )
    });
    reg.register("dex", |g, s| {
        Box::new(Dex::new(
            g,
            DexConfig {
                seed: s,
                ..DexConfig::default()
            },
        ))
    });
    reg.register("no-heal", |g, _| Box::new(NoHeal::new(g)));
    reg.register("cycle-heal", |g, _| Box::new(CycleHeal::new(g)));
    reg.register("star-heal", |g, _| Box::new(StarHeal::new(g)));
    reg.register("binary-tree-heal", |g, _| Box::new(BinaryTreeHeal::new(g)));
    reg.register("forgiving-like", |g, _| Box::new(ForgivingLike::new(g)));
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use xheal_graph::generators;

    #[test]
    fn standard_registry_has_all_ten_engines() {
        let reg = standard_registry(4);
        assert_eq!(
            reg.keys(),
            [
                "binary-tree-heal",
                "cycle-heal",
                "dex",
                "forgiving-like",
                "no-heal",
                "star-heal",
                "xheal",
                "xheal-dist-async",
                "xheal-dist-sync",
                "xheal-par",
            ]
        );
    }

    #[test]
    fn arena_covers_every_cell() {
        let g0 = generators::ring_with_chords(24);
        let reg = standard_registry(4);
        let schedules = ArenaSchedule::standard(10);
        let matrix = run_arena(&reg, &schedules, &g0, 99, |_, _, _| NoScorer);
        assert_eq!(matrix.cells.len(), 30);
        assert!(matrix.is_complete());
        assert_eq!(matrix.engines().len(), 10);
        assert_eq!(
            matrix.schedules(),
            ["uniform-churn", "clustered-bursts", "insert-heavy"]
        );
        for cell in &matrix.cells {
            assert!(cell.steps_applied > 0, "{}/{}", cell.engine, cell.schedule);
            assert!(cell.nodes > 0);
            assert!(cell.quality.max_degree > 0);
        }
        // Insert-heavy growth is deletion-free by construction.
        for e in matrix.engines() {
            let cell = matrix.cell(e, "insert-heavy").unwrap();
            assert_eq!(cell.deletions, 0, "{e}");
            assert_eq!(cell.insertions, cell.steps_applied, "{e}");
        }
    }

    #[test]
    fn membership_only_schedules_are_identical_across_engines() {
        // Uniform churn and insert-heavy pick events from membership alone,
        // so engines with identical memberships see identical event tapes.
        let g0 = generators::ring_with_chords(16);
        let reg = standard_registry(4);
        let schedules = [
            ArenaSchedule::uniform_churn(14),
            ArenaSchedule::insert_heavy(8),
        ];
        for sched in &schedules {
            let mut tapes = Vec::new();
            for key in ["xheal", "dex", "cycle-heal"] {
                let mut engine = reg.build(key, &g0, 5).expect("key");
                let mut adversary = sched.adversary(&g0);
                let summary = crate::runner::run(
                    engine.as_mut(),
                    adversary.as_mut(),
                    sched.steps,
                    sched.seed(5),
                );
                tapes.push(summary.events);
            }
            assert_eq!(tapes[0], tapes[1], "{}", sched.name);
            assert_eq!(tapes[0], tapes[2], "{}", sched.name);
        }
    }

    #[test]
    fn dex_degree_stays_bounded_in_arena() {
        let g0 = generators::ring_with_chords(20);
        let reg = standard_registry(4);
        let matrix = run_arena(&reg, &ArenaSchedule::standard(20), &g0, 3, |_, _, _| {
            NoScorer
        });
        let bound = DexConfig::default().degree * DexConfig::default().max_load;
        for sched in matrix.schedules() {
            let cell = matrix.cell("dex", sched).unwrap();
            assert!(
                cell.quality.max_degree <= bound,
                "{sched}: {} > {bound}",
                cell.quality.max_degree
            );
        }
    }
}
