//! Adversary strategies.
//!
//! The model's adversary is *omniscient about topology* (it sees the whole
//! graph, including healing edges) but *oblivious to the healer's coin
//! flips*. Every strategy here therefore receives the current graph and its
//! own RNG, never the healer's internals.

use rand::rngs::StdRng;
use rand::Rng;

use xheal_graph::{components, Graph, IdAllocator, NodeId};

use xheal_core::Event;

/// An attack strategy producing the next adversarial event.
pub trait Adversary {
    /// Strategy name for experiment tables.
    fn name(&self) -> &'static str;

    /// Produces the next event given the current topology, or `None` when
    /// the strategy has nothing left to do (e.g. scripted sequences ended or
    /// the graph is too small to attack).
    fn next_event(&mut self, graph: &Graph, rng: &mut StdRng) -> Option<Event>;
}

fn random_live(graph: &Graph, rng: &mut StdRng) -> Option<NodeId> {
    let nodes = graph.node_vec();
    if nodes.is_empty() {
        return None;
    }
    Some(nodes[rng.random_range(0..nodes.len())])
}

fn random_neighbors(graph: &Graph, rng: &mut StdRng, max: usize) -> Vec<NodeId> {
    let nodes = graph.node_vec();
    if nodes.is_empty() {
        return Vec::new();
    }
    let count = rng.random_range(1..=max.min(nodes.len()));
    let mut out = Vec::new();
    for _ in 0..count {
        let u = nodes[rng.random_range(0..nodes.len())];
        if !out.contains(&u) {
            out.push(u);
        }
    }
    out
}

/// Mixed random churn: insert with probability `p_insert`, else delete a
/// uniformly random node. Keeps at least `min_nodes` nodes alive.
#[derive(Clone, Debug)]
pub struct RandomChurn {
    /// Probability of an insertion at each step.
    pub p_insert: f64,
    /// Maximum neighbors given to inserted nodes.
    pub max_neighbors: usize,
    /// Never delete below this size.
    pub min_nodes: usize,
    ids: IdAllocator,
}

impl RandomChurn {
    /// Creates the strategy; `ids` must start above all existing node ids.
    pub fn new(p_insert: f64, max_neighbors: usize, min_nodes: usize, graph: &Graph) -> Self {
        let mut ids = IdAllocator::new();
        for v in graph.nodes() {
            ids.observe(v);
        }
        RandomChurn {
            p_insert,
            max_neighbors,
            min_nodes,
            ids,
        }
    }
}

impl Adversary for RandomChurn {
    fn name(&self) -> &'static str {
        "random-churn"
    }

    fn next_event(&mut self, graph: &Graph, rng: &mut StdRng) -> Option<Event> {
        let can_delete = graph.node_count() > self.min_nodes;
        if !can_delete || rng.random::<f64>() < self.p_insert {
            Some(Event::Insert {
                node: self.ids.fresh(),
                neighbors: random_neighbors(graph, rng, self.max_neighbors),
            })
        } else {
            Some(Event::Delete {
                node: random_live(graph, rng)?,
            })
        }
    }
}

/// Deletion-only adversary with a targeting rule.
#[derive(Clone, Debug)]
pub struct DeleteOnly {
    /// How victims are chosen.
    pub targeting: Targeting,
    /// Never delete below this size.
    pub min_nodes: usize,
}

/// Victim-selection rules for [`DeleteOnly`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Targeting {
    /// Uniformly random victim.
    Random,
    /// Always the current highest-degree node (hub hunting).
    HighestDegree,
    /// Prefer articulation points (cut vertices) — the omniscient
    /// adversary's meanest topology-aware attack; falls back to
    /// highest-degree when the graph is biconnected.
    Articulation,
}

impl DeleteOnly {
    /// Creates the strategy.
    pub fn new(targeting: Targeting, min_nodes: usize) -> Self {
        DeleteOnly {
            targeting,
            min_nodes,
        }
    }
}

impl Adversary for DeleteOnly {
    fn name(&self) -> &'static str {
        match self.targeting {
            Targeting::Random => "delete-random",
            Targeting::HighestDegree => "delete-max-degree",
            Targeting::Articulation => "delete-articulation",
        }
    }

    fn next_event(&mut self, graph: &Graph, rng: &mut StdRng) -> Option<Event> {
        if graph.node_count() <= self.min_nodes {
            return None;
        }
        let victim = match self.targeting {
            Targeting::Random => random_live(graph, rng)?,
            Targeting::HighestDegree => graph
                .node_vec()
                .into_iter()
                .max_by_key(|&v| (graph.degree(v).unwrap_or(0), v))?,
            Targeting::Articulation => {
                let cuts = components::articulation_points(graph);
                match cuts.first() {
                    Some(&v) => v,
                    None => graph
                        .node_vec()
                        .into_iter()
                        .max_by_key(|&v| (graph.degree(v).unwrap_or(0), v))?,
                }
            }
        };
        Some(Event::Delete { node: victim })
    }
}

/// Growth-only adversary: inserts leaf-ish nodes attached to random targets.
#[derive(Clone, Debug)]
pub struct InsertOnly {
    /// Maximum neighbors per insertion.
    pub max_neighbors: usize,
    ids: IdAllocator,
}

impl InsertOnly {
    /// Creates the strategy.
    pub fn new(max_neighbors: usize, graph: &Graph) -> Self {
        let mut ids = IdAllocator::new();
        for v in graph.nodes() {
            ids.observe(v);
        }
        InsertOnly { max_neighbors, ids }
    }
}

impl Adversary for InsertOnly {
    fn name(&self) -> &'static str {
        "insert-only"
    }

    fn next_event(&mut self, graph: &Graph, rng: &mut StdRng) -> Option<Event> {
        Some(Event::Insert {
            node: self.ids.fresh(),
            neighbors: random_neighbors(graph, rng, self.max_neighbors),
        })
    }
}

/// Correlated burst deletions: every `period`-th event kills a whole
/// *neighborhood* at once (a rack, a failure domain) as one
/// [`Event::DeleteBatch`]; the events in between insert fresh nodes so the
/// network keeps growing into the next burst. The victims are gathered by
/// breadth-first search from a random seed node, so a burst is a
/// topologically clustered hole — the hardest shape for repairs that
/// assume victims heal each other's neighborhoods.
#[derive(Clone, Debug)]
pub struct BurstDeletions {
    /// Victims per burst (bursts shrink near `min_nodes`).
    pub burst_size: usize,
    /// A burst fires every `period` events; the rest insert.
    pub period: usize,
    /// Maximum neighbors given to inserted nodes.
    pub max_neighbors: usize,
    /// Never delete below this size.
    pub min_nodes: usize,
    step: usize,
    ids: IdAllocator,
}

impl BurstDeletions {
    /// Creates the strategy; fresh ids start above all existing node ids.
    ///
    /// # Panics
    ///
    /// Panics if `burst_size` or `period` is zero.
    pub fn new(
        burst_size: usize,
        period: usize,
        max_neighbors: usize,
        min_nodes: usize,
        graph: &Graph,
    ) -> Self {
        assert!(burst_size > 0 && period > 0);
        let mut ids = IdAllocator::new();
        for v in graph.nodes() {
            ids.observe(v);
        }
        BurstDeletions {
            burst_size,
            period,
            max_neighbors,
            min_nodes,
            step: 0,
            ids,
        }
    }
}

/// Collects up to `want` victims by BFS from `seed` (always including
/// `seed` itself), ascending-neighbor order for determinism — the shape of
/// a correlated failure domain ("rack"). Shared by [`BurstDeletions`] and
/// the burst experiments so every harness means the same thing by a rack.
pub fn bfs_rack(graph: &Graph, seed: NodeId, want: usize) -> Vec<NodeId> {
    let mut rack = vec![seed];
    let mut in_rack: std::collections::BTreeSet<NodeId> = [seed].into_iter().collect();
    let mut frontier = 0;
    while rack.len() < want && frontier < rack.len() {
        let v = rack[frontier];
        frontier += 1;
        for u in graph.neighbors(v) {
            if rack.len() >= want {
                break;
            }
            if in_rack.insert(u) {
                rack.push(u);
            }
        }
    }
    rack
}

impl Adversary for BurstDeletions {
    fn name(&self) -> &'static str {
        "burst-deletions"
    }

    fn next_event(&mut self, graph: &Graph, rng: &mut StdRng) -> Option<Event> {
        self.step += 1;
        let headroom = graph.node_count().saturating_sub(self.min_nodes);
        if self.step % self.period == 0 && headroom > 0 {
            let seed = random_live(graph, rng)?;
            let rack = bfs_rack(graph, seed, self.burst_size.min(headroom));
            return Some(Event::DeleteBatch { nodes: rack });
        }
        Some(Event::Insert {
            node: self.ids.fresh(),
            neighbors: random_neighbors(graph, rng, self.max_neighbors),
        })
    }
}

/// Replays a fixed event script (used by figure reproductions).
#[derive(Clone, Debug)]
pub struct Scripted {
    events: std::vec::IntoIter<Event>,
}

impl Scripted {
    /// Wraps a fixed sequence of events.
    pub fn new(events: Vec<Event>) -> Self {
        Scripted {
            events: events.into_iter(),
        }
    }
}

impl Adversary for Scripted {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn next_event(&mut self, _graph: &Graph, _rng: &mut StdRng) -> Option<Event> {
        self.events.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xheal_graph::generators;

    #[test]
    fn random_churn_respects_min_nodes() {
        let g = generators::cycle(4);
        let mut adv = RandomChurn::new(0.0, 3, 4, &g);
        let mut rng = StdRng::seed_from_u64(1);
        // Graph at min size: only insertions possible.
        let e = adv.next_event(&g, &mut rng).unwrap();
        assert!(!e.is_delete());
    }

    #[test]
    fn random_churn_fresh_ids_do_not_collide() {
        let g = generators::cycle(6);
        let mut adv = RandomChurn::new(1.0, 2, 0, &g);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let e = adv.next_event(&g, &mut rng).unwrap();
            assert!(e.node().as_u64() >= 6);
        }
    }

    #[test]
    fn delete_only_targets_hub() {
        let g = generators::star(8);
        let mut adv = DeleteOnly::new(Targeting::HighestDegree, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let e = adv.next_event(&g, &mut rng).unwrap();
        assert_eq!(
            e,
            Event::Delete {
                node: NodeId::new(0)
            }
        );
    }

    #[test]
    fn delete_only_targets_articulation_point() {
        let g = generators::path(5);
        let mut adv = DeleteOnly::new(Targeting::Articulation, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let e = adv.next_event(&g, &mut rng).unwrap();
        // Interior nodes 1..=3 are the articulation points; the first is 1.
        assert_eq!(
            e,
            Event::Delete {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn delete_only_stops_at_min() {
        let g = generators::cycle(3);
        let mut adv = DeleteOnly::new(Targeting::Random, 3);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(adv.next_event(&g, &mut rng).is_none());
    }

    #[test]
    fn burst_deletions_fire_clustered_batches() {
        let g = generators::cycle(20);
        let mut adv = BurstDeletions::new(4, 3, 2, 4, &g);
        let mut rng = StdRng::seed_from_u64(9);
        // Steps 1 and 2 insert; step 3 bursts.
        assert!(!adv.next_event(&g, &mut rng).unwrap().is_delete());
        assert!(!adv.next_event(&g, &mut rng).unwrap().is_delete());
        let e = adv.next_event(&g, &mut rng).unwrap();
        let Event::DeleteBatch { nodes } = e else {
            panic!("expected a burst, got {e:?}");
        };
        assert_eq!(nodes.len(), 4);
        // BFS gathering makes the rack connected in the cycle: victims form
        // one contiguous arc, so consecutive ids (mod 20) are adjacent.
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "victims are distinct");
    }

    #[test]
    fn burst_deletions_respect_min_nodes() {
        let g = generators::cycle(5);
        let mut adv = BurstDeletions::new(10, 1, 2, 3, &g);
        let mut rng = StdRng::seed_from_u64(10);
        let e = adv.next_event(&g, &mut rng).unwrap();
        let Event::DeleteBatch { nodes } = e else {
            panic!("period 1 must burst immediately");
        };
        assert_eq!(nodes.len(), 2, "burst clamped to the headroom above min");
    }

    #[test]
    fn scripted_replays_in_order() {
        let g = generators::cycle(3);
        let mut rng = StdRng::seed_from_u64(6);
        let script = vec![
            Event::Delete {
                node: NodeId::new(0),
            },
            Event::Insert {
                node: NodeId::new(9),
                neighbors: vec![NodeId::new(1)],
            },
        ];
        let mut adv = Scripted::new(script.clone());
        assert_eq!(adv.next_event(&g, &mut rng), Some(script[0].clone()));
        assert_eq!(adv.next_event(&g, &mut rng), Some(script[1].clone()));
        assert_eq!(adv.next_event(&g, &mut rng), None);
    }
}
