//! Adversary strategies.
//!
//! The model's adversary is *omniscient about topology* (it sees the whole
//! graph, including healing edges) but *oblivious to the healer's coin
//! flips*. Every strategy here therefore receives the current graph and its
//! own RNG, never the healer's internals.

use rand::rngs::StdRng;
use rand::Rng;

use xheal_graph::{components, Graph, IdAllocator, NodeId};

use crate::event::Event;

/// An attack strategy producing the next adversarial event.
pub trait Adversary {
    /// Strategy name for experiment tables.
    fn name(&self) -> &'static str;

    /// Produces the next event given the current topology, or `None` when
    /// the strategy has nothing left to do (e.g. scripted sequences ended or
    /// the graph is too small to attack).
    fn next_event(&mut self, graph: &Graph, rng: &mut StdRng) -> Option<Event>;
}

fn random_live(graph: &Graph, rng: &mut StdRng) -> Option<NodeId> {
    let nodes = graph.node_vec();
    if nodes.is_empty() {
        return None;
    }
    Some(nodes[rng.random_range(0..nodes.len())])
}

fn random_neighbors(graph: &Graph, rng: &mut StdRng, max: usize) -> Vec<NodeId> {
    let nodes = graph.node_vec();
    if nodes.is_empty() {
        return Vec::new();
    }
    let count = rng.random_range(1..=max.min(nodes.len()));
    let mut out = Vec::new();
    for _ in 0..count {
        let u = nodes[rng.random_range(0..nodes.len())];
        if !out.contains(&u) {
            out.push(u);
        }
    }
    out
}

/// Mixed random churn: insert with probability `p_insert`, else delete a
/// uniformly random node. Keeps at least `min_nodes` nodes alive.
#[derive(Clone, Debug)]
pub struct RandomChurn {
    /// Probability of an insertion at each step.
    pub p_insert: f64,
    /// Maximum neighbors given to inserted nodes.
    pub max_neighbors: usize,
    /// Never delete below this size.
    pub min_nodes: usize,
    ids: IdAllocator,
}

impl RandomChurn {
    /// Creates the strategy; `ids` must start above all existing node ids.
    pub fn new(p_insert: f64, max_neighbors: usize, min_nodes: usize, graph: &Graph) -> Self {
        let mut ids = IdAllocator::new();
        for v in graph.nodes() {
            ids.observe(v);
        }
        RandomChurn {
            p_insert,
            max_neighbors,
            min_nodes,
            ids,
        }
    }
}

impl Adversary for RandomChurn {
    fn name(&self) -> &'static str {
        "random-churn"
    }

    fn next_event(&mut self, graph: &Graph, rng: &mut StdRng) -> Option<Event> {
        let can_delete = graph.node_count() > self.min_nodes;
        if !can_delete || rng.random::<f64>() < self.p_insert {
            Some(Event::Insert {
                node: self.ids.fresh(),
                neighbors: random_neighbors(graph, rng, self.max_neighbors),
            })
        } else {
            Some(Event::Delete {
                node: random_live(graph, rng)?,
            })
        }
    }
}

/// Deletion-only adversary with a targeting rule.
#[derive(Clone, Debug)]
pub struct DeleteOnly {
    /// How victims are chosen.
    pub targeting: Targeting,
    /// Never delete below this size.
    pub min_nodes: usize,
}

/// Victim-selection rules for [`DeleteOnly`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Targeting {
    /// Uniformly random victim.
    Random,
    /// Always the current highest-degree node (hub hunting).
    HighestDegree,
    /// Prefer articulation points (cut vertices) — the omniscient
    /// adversary's meanest topology-aware attack; falls back to
    /// highest-degree when the graph is biconnected.
    Articulation,
}

impl DeleteOnly {
    /// Creates the strategy.
    pub fn new(targeting: Targeting, min_nodes: usize) -> Self {
        DeleteOnly {
            targeting,
            min_nodes,
        }
    }
}

impl Adversary for DeleteOnly {
    fn name(&self) -> &'static str {
        match self.targeting {
            Targeting::Random => "delete-random",
            Targeting::HighestDegree => "delete-max-degree",
            Targeting::Articulation => "delete-articulation",
        }
    }

    fn next_event(&mut self, graph: &Graph, rng: &mut StdRng) -> Option<Event> {
        if graph.node_count() <= self.min_nodes {
            return None;
        }
        let victim = match self.targeting {
            Targeting::Random => random_live(graph, rng)?,
            Targeting::HighestDegree => graph
                .node_vec()
                .into_iter()
                .max_by_key(|&v| (graph.degree(v).unwrap_or(0), v))?,
            Targeting::Articulation => {
                let cuts = components::articulation_points(graph);
                match cuts.first() {
                    Some(&v) => v,
                    None => graph
                        .node_vec()
                        .into_iter()
                        .max_by_key(|&v| (graph.degree(v).unwrap_or(0), v))?,
                }
            }
        };
        Some(Event::Delete { node: victim })
    }
}

/// Growth-only adversary: inserts leaf-ish nodes attached to random targets.
#[derive(Clone, Debug)]
pub struct InsertOnly {
    /// Maximum neighbors per insertion.
    pub max_neighbors: usize,
    ids: IdAllocator,
}

impl InsertOnly {
    /// Creates the strategy.
    pub fn new(max_neighbors: usize, graph: &Graph) -> Self {
        let mut ids = IdAllocator::new();
        for v in graph.nodes() {
            ids.observe(v);
        }
        InsertOnly { max_neighbors, ids }
    }
}

impl Adversary for InsertOnly {
    fn name(&self) -> &'static str {
        "insert-only"
    }

    fn next_event(&mut self, graph: &Graph, rng: &mut StdRng) -> Option<Event> {
        Some(Event::Insert {
            node: self.ids.fresh(),
            neighbors: random_neighbors(graph, rng, self.max_neighbors),
        })
    }
}

/// Replays a fixed event script (used by figure reproductions).
#[derive(Clone, Debug)]
pub struct Scripted {
    events: std::vec::IntoIter<Event>,
}

impl Scripted {
    /// Wraps a fixed sequence of events.
    pub fn new(events: Vec<Event>) -> Self {
        Scripted {
            events: events.into_iter(),
        }
    }
}

impl Adversary for Scripted {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn next_event(&mut self, _graph: &Graph, _rng: &mut StdRng) -> Option<Event> {
        self.events.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xheal_graph::generators;

    #[test]
    fn random_churn_respects_min_nodes() {
        let g = generators::cycle(4);
        let mut adv = RandomChurn::new(0.0, 3, 4, &g);
        let mut rng = StdRng::seed_from_u64(1);
        // Graph at min size: only insertions possible.
        let e = adv.next_event(&g, &mut rng).unwrap();
        assert!(!e.is_delete());
    }

    #[test]
    fn random_churn_fresh_ids_do_not_collide() {
        let g = generators::cycle(6);
        let mut adv = RandomChurn::new(1.0, 2, 0, &g);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let e = adv.next_event(&g, &mut rng).unwrap();
            assert!(e.node().as_u64() >= 6);
        }
    }

    #[test]
    fn delete_only_targets_hub() {
        let g = generators::star(8);
        let mut adv = DeleteOnly::new(Targeting::HighestDegree, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let e = adv.next_event(&g, &mut rng).unwrap();
        assert_eq!(
            e,
            Event::Delete {
                node: NodeId::new(0)
            }
        );
    }

    #[test]
    fn delete_only_targets_articulation_point() {
        let g = generators::path(5);
        let mut adv = DeleteOnly::new(Targeting::Articulation, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let e = adv.next_event(&g, &mut rng).unwrap();
        // Interior nodes 1..=3 are the articulation points; the first is 1.
        assert_eq!(
            e,
            Event::Delete {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn delete_only_stops_at_min() {
        let g = generators::cycle(3);
        let mut adv = DeleteOnly::new(Targeting::Random, 3);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(adv.next_event(&g, &mut rng).is_none());
    }

    #[test]
    fn scripted_replays_in_order() {
        let g = generators::cycle(3);
        let mut rng = StdRng::seed_from_u64(6);
        let script = vec![
            Event::Delete {
                node: NodeId::new(0),
            },
            Event::Insert {
                node: NodeId::new(9),
                neighbors: vec![NodeId::new(1)],
            },
        ];
        let mut adv = Scripted::new(script.clone());
        assert_eq!(adv.next_event(&g, &mut rng), Some(script[0].clone()));
        assert_eq!(adv.next_event(&g, &mut rng), Some(script[1].clone()));
        assert_eq!(adv.next_event(&g, &mut rng), None);
    }
}
