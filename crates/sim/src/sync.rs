//! The synchronous-round engine: the paper's LOCAL model taken literally.

use std::collections::{BTreeMap, BTreeSet};

use xheal_graph::NodeId;

use crate::engine::{Counters, Envelope, NetworkEngine};

/// The synchronous-round engine: every message staged during round `r` is
/// delivered at round `r + 1`, reliably and in send order. This is the
/// LOCAL model of the paper's Section 2 with no adversarial scheduling —
/// the reference substrate the asynchronous engine is validated against.
#[derive(Clone, Debug, Default)]
pub struct SyncNetwork<M> {
    nodes: BTreeSet<NodeId>,
    staged: Vec<Envelope<M>>,
    inboxes: BTreeMap<NodeId, Vec<Envelope<M>>>,
    dropped: Vec<Envelope<M>>,
    counters: Counters,
}

impl<M> SyncNetwork<M> {
    /// Creates an empty network.
    pub fn new() -> Self {
        SyncNetwork {
            nodes: BTreeSet::new(),
            staged: Vec::new(),
            inboxes: BTreeMap::new(),
            dropped: Vec::new(),
            counters: Counters::default(),
        }
    }

    /// Registers a processor. Idempotent.
    pub fn add_node(&mut self, v: NodeId) {
        self.nodes.insert(v);
    }

    /// Removes a processor; its pending inbox is discarded and any staged
    /// messages to it will be dropped at delivery time (the adversary
    /// deleted it mid-protocol).
    pub fn remove_node(&mut self, v: NodeId) {
        self.nodes.remove(&v);
        self.inboxes.remove(&v);
    }

    /// Is the processor registered?
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// Number of registered processors.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no processors are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Stages a message for delivery at the next [`SyncNetwork::step`].
    ///
    /// # Panics
    ///
    /// Panics if the sender is not registered (recipients may legitimately
    /// disappear before delivery; senders cannot).
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        assert!(self.nodes.contains(&from), "sender {from} not registered");
        self.staged.push(Envelope { from, to, payload });
    }

    /// Advances one synchronous round, delivering all staged messages.
    /// Returns the number delivered.
    pub fn step(&mut self) -> usize {
        self.counters.rounds += 1;
        let mut delivered = 0;
        for env in self.staged.drain(..) {
            if self.nodes.contains(&env.to) {
                self.inboxes.entry(env.to).or_default().push(env);
                delivered += 1;
            } else {
                self.counters.dropped += 1;
                self.dropped.push(env);
            }
        }
        self.counters.messages += delivered as u64;
        delivered
    }

    /// Steps only if messages are staged; returns whether a round ran.
    pub fn step_if_pending(&mut self) -> bool {
        if self.staged.is_empty() {
            return false;
        }
        self.step();
        true
    }

    /// Takes all messages waiting at `v`.
    pub fn drain_inbox(&mut self, v: NodeId) -> Vec<Envelope<M>> {
        self.inboxes.remove(&v).unwrap_or_default()
    }

    /// Nodes with non-empty inboxes, ascending. Borrows — the per-round
    /// delivery loop uses [`NetworkEngine::nodes_with_mail_into`] with a
    /// reusable buffer instead, since it must mutate the network while
    /// iterating.
    pub fn nodes_with_mail(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.inboxes.keys().copied()
    }

    /// Are messages staged for the next round?
    pub fn has_staged(&self) -> bool {
        !self.staged.is_empty()
    }

    /// Cost counters so far.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Rounds stepped so far.
    pub fn rounds(&self) -> u64 {
        self.counters.rounds
    }

    /// Messages delivered so far.
    pub fn messages(&self) -> u64 {
        self.counters.messages
    }
}

impl<M> NetworkEngine<M> for SyncNetwork<M> {
    fn add_node(&mut self, v: NodeId) {
        SyncNetwork::add_node(self, v);
    }

    fn remove_node(&mut self, v: NodeId) {
        SyncNetwork::remove_node(self, v);
    }

    fn contains(&self, v: NodeId) -> bool {
        SyncNetwork::contains(self, v)
    }

    fn len(&self) -> usize {
        SyncNetwork::len(self)
    }

    fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        SyncNetwork::send(self, from, to, payload);
    }

    fn step(&mut self) -> usize {
        SyncNetwork::step(self)
    }

    fn has_pending(&self) -> bool {
        self.has_staged()
    }

    fn nodes_with_mail_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.inboxes.keys().copied());
    }

    fn drain_inbox_into(&mut self, v: NodeId, out: &mut Vec<Envelope<M>>) {
        out.clear();
        if let Some(mut inbox) = self.inboxes.remove(&v) {
            out.append(&mut inbox);
        }
    }

    fn drain_dropped_into(&mut self, out: &mut Vec<Envelope<M>>) {
        out.clear();
        out.append(&mut self.dropped);
    }

    fn counters(&self) -> Counters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn net3() -> SyncNetwork<u32> {
        let mut net = SyncNetwork::new();
        for i in 0..3 {
            net.add_node(n(i));
        }
        net
    }

    #[test]
    fn delivery_is_next_round() {
        let mut net = net3();
        net.send(n(0), n(1), 7);
        assert!(net.drain_inbox(n(1)).is_empty(), "not delivered yet");
        net.step();
        let inbox = net.drain_inbox(n(1));
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].from, n(0));
        assert_eq!(inbox[0].payload, 7);
    }

    #[test]
    fn messages_to_dead_nodes_are_dropped() {
        let mut net = net3();
        net.send(n(0), n(2), 1);
        net.remove_node(n(2));
        net.step();
        assert_eq!(net.counters().dropped, 1);
        assert_eq!(net.messages(), 0);
        let mut dropped = Vec::new();
        net.drain_dropped_into(&mut dropped);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].to, n(2));
        net.drain_dropped_into(&mut dropped);
        assert!(dropped.is_empty(), "drained once");
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_sender_panics() {
        let mut net = net3();
        net.send(n(9), n(0), 1);
    }

    #[test]
    fn counters_accumulate_and_diff() {
        let mut net = net3();
        net.send(n(0), n(1), 1);
        net.step();
        let snapshot = net.counters();
        net.send(n(1), n(2), 2);
        net.send(n(1), n(0), 3);
        net.step();
        let delta = net.counters().since(snapshot);
        assert_eq!(delta.rounds, 1);
        assert_eq!(delta.messages, 2);
    }

    #[test]
    fn step_if_pending_skips_empty_rounds() {
        let mut net = net3();
        assert!(!net.step_if_pending());
        assert_eq!(net.rounds(), 0);
        net.send(n(0), n(1), 1);
        assert!(net.step_if_pending());
        assert_eq!(net.rounds(), 1);
    }

    #[test]
    fn inbox_drain_clears() {
        let mut net = net3();
        net.send(n(0), n(1), 1);
        net.step();
        assert_eq!(net.nodes_with_mail().collect::<Vec<_>>(), vec![n(1)]);
        assert_eq!(net.drain_inbox(n(1)).len(), 1);
        assert!(net.drain_inbox(n(1)).is_empty());
        assert_eq!(net.nodes_with_mail().count(), 0);
    }

    #[test]
    fn nodes_with_mail_into_reuses_buffer() {
        let mut net = net3();
        net.send(n(0), n(1), 1);
        net.send(n(0), n(2), 2);
        net.step();
        let mut buf = vec![n(99)]; // stale content must be cleared
        NetworkEngine::nodes_with_mail_into(&net, &mut buf);
        assert_eq!(buf, vec![n(1), n(2)]);
        let mut mail = Vec::new();
        net.drain_inbox_into(n(1), &mut mail);
        assert_eq!(mail.len(), 1);
        net.drain_inbox_into(n(1), &mut mail);
        assert!(mail.is_empty());
    }

    #[test]
    fn removed_node_inbox_discarded() {
        let mut net = net3();
        net.send(n(0), n(1), 1);
        net.step();
        net.remove_node(n(1));
        net.add_node(n(1));
        assert!(net.drain_inbox(n(1)).is_empty());
    }
}
