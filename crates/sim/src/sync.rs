//! The synchronous-round engine: the paper's LOCAL model taken literally.

use xheal_graph::NodeId;
use xheal_trace::{hook, Layer, SharedTracer};

use crate::engine::{Counters, Envelope, NetworkEngine};
use crate::mailbox::Mailboxes;

/// The synchronous-round engine: every message staged during round `r` is
/// delivered at round `r + 1`, reliably and in send order. This is the
/// LOCAL model of the paper's Section 2 with no adversarial scheduling —
/// the reference substrate the asynchronous engine is validated against.
///
/// Membership and inboxes live in the shared flat mailbox arena
/// (`crate::mailbox`): slot-indexed delivery, a maintained dirty-slot
/// list instead of full-map scans, and buffers that keep their capacity —
/// steady-state stepping allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct SyncNetwork<M> {
    mail: Mailboxes<M>,
    staged: Vec<Envelope<M>>,
    /// Optional transport-span recorder; `None` keeps stepping branch-only.
    tracer: Option<SharedTracer>,
}

impl<M> SyncNetwork<M> {
    /// Creates an empty network.
    pub fn new() -> Self {
        SyncNetwork {
            mail: Mailboxes::new(),
            staged: Vec::new(),
            tracer: None,
        }
    }

    /// Registers a processor. Idempotent.
    pub fn add_node(&mut self, v: NodeId) {
        self.mail.add(v);
    }

    /// Removes a processor; its pending inbox is discarded and any staged
    /// messages to it will be dropped at delivery time (the adversary
    /// deleted it mid-protocol).
    pub fn remove_node(&mut self, v: NodeId) {
        self.mail.remove(v);
    }

    /// Is the processor registered?
    pub fn contains(&self, v: NodeId) -> bool {
        self.mail.contains(v)
    }

    /// Number of registered processors.
    pub fn len(&self) -> usize {
        self.mail.len()
    }

    /// True when no processors are registered.
    pub fn is_empty(&self) -> bool {
        self.mail.len() == 0
    }

    /// Stages a message for delivery at the next [`SyncNetwork::step`].
    ///
    /// # Panics
    ///
    /// Panics if the sender is not registered (recipients may legitimately
    /// disappear before delivery; senders cannot).
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        assert!(self.mail.contains(from), "sender {from} not registered");
        self.mail.tally(&payload);
        self.staged.push(Envelope { from, to, payload });
    }

    /// Advances one synchronous round, delivering all staged messages.
    /// Returns the number delivered.
    pub fn step(&mut self) -> usize {
        self.mail.count_round();
        let mut delivered = 0;
        for env in self.staged.drain(..) {
            if self.mail.deliver(env, false) {
                delivered += 1;
            }
        }
        self.mail.count_delivered(delivered);
        if delivered > 0 {
            hook::instant(
                &self.tracer,
                Layer::Transport,
                "net.step",
                0,
                delivered as u64,
            );
        }
        delivered
    }

    /// Steps only if messages are staged; returns whether a round ran.
    pub fn step_if_pending(&mut self) -> bool {
        if self.staged.is_empty() {
            return false;
        }
        self.step();
        true
    }

    /// Takes all messages waiting at `v`.
    pub fn drain_inbox(&mut self, v: NodeId) -> Vec<Envelope<M>> {
        let mut out = Vec::new();
        self.mail.drain_inbox_into(v, &mut out);
        out
    }

    /// Nodes with non-empty inboxes, ascending. Collects a snapshot — the
    /// per-round delivery loop uses [`NetworkEngine::nodes_with_mail_into`]
    /// with a reusable buffer instead, since it must mutate the network
    /// while iterating.
    pub fn nodes_with_mail(&self) -> impl Iterator<Item = NodeId> + '_ {
        let mut out = Vec::new();
        self.mail.nodes_with_mail_into(&mut out);
        out.into_iter()
    }

    /// Are messages staged for the next round?
    pub fn has_staged(&self) -> bool {
        !self.staged.is_empty()
    }

    /// Cost counters so far.
    pub fn counters(&self) -> Counters {
        self.mail.counters()
    }

    /// Rounds stepped so far.
    pub fn rounds(&self) -> u64 {
        self.mail.counters().rounds
    }

    /// Messages delivered so far.
    pub fn messages(&self) -> u64 {
        self.mail.counters().messages
    }
}

impl<M> NetworkEngine<M> for SyncNetwork<M> {
    fn add_node(&mut self, v: NodeId) {
        SyncNetwork::add_node(self, v);
    }

    fn remove_node(&mut self, v: NodeId) {
        SyncNetwork::remove_node(self, v);
    }

    fn contains(&self, v: NodeId) -> bool {
        SyncNetwork::contains(self, v)
    }

    fn len(&self) -> usize {
        SyncNetwork::len(self)
    }

    fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        SyncNetwork::send(self, from, to, payload);
    }

    fn step(&mut self) -> usize {
        SyncNetwork::step(self)
    }

    fn has_pending(&self) -> bool {
        self.has_staged()
    }

    fn nodes_with_mail_into(&self, out: &mut Vec<NodeId>) {
        self.mail.nodes_with_mail_into(out);
    }

    fn drain_inbox_into(&mut self, v: NodeId, out: &mut Vec<Envelope<M>>) {
        self.mail.drain_inbox_into(v, out);
    }

    fn drain_dropped_into(&mut self, out: &mut Vec<Envelope<M>>) {
        self.mail.drain_dropped_into(out);
    }

    fn counters(&self) -> Counters {
        self.mail.counters()
    }

    fn set_classifier(&mut self, labels: &'static [&'static str], classify: fn(&M) -> usize) {
        self.mail.set_classifier(labels, classify);
    }

    fn kind_counts(&self) -> (&'static [&'static str], &[u64]) {
        self.mail.kind_counts()
    }

    fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn net3() -> SyncNetwork<u32> {
        let mut net = SyncNetwork::new();
        for i in 0..3 {
            net.add_node(n(i));
        }
        net
    }

    #[test]
    fn delivery_is_next_round() {
        let mut net = net3();
        net.send(n(0), n(1), 7);
        assert!(net.drain_inbox(n(1)).is_empty(), "not delivered yet");
        net.step();
        let inbox = net.drain_inbox(n(1));
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].from, n(0));
        assert_eq!(inbox[0].payload, 7);
    }

    #[test]
    fn messages_to_dead_nodes_are_dropped() {
        let mut net = net3();
        net.send(n(0), n(2), 1);
        net.remove_node(n(2));
        net.step();
        assert_eq!(net.counters().dropped, 1);
        assert_eq!(net.messages(), 0);
        let mut dropped = Vec::new();
        net.drain_dropped_into(&mut dropped);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].to, n(2));
        net.drain_dropped_into(&mut dropped);
        assert!(dropped.is_empty(), "drained once");
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_sender_panics() {
        let mut net = net3();
        net.send(n(9), n(0), 1);
    }

    #[test]
    fn counters_accumulate_and_diff() {
        let mut net = net3();
        net.send(n(0), n(1), 1);
        net.step();
        let snapshot = net.counters();
        net.send(n(1), n(2), 2);
        net.send(n(1), n(0), 3);
        net.step();
        let delta = net.counters().since(snapshot);
        assert_eq!(delta.rounds, 1);
        assert_eq!(delta.messages, 2);
    }

    #[test]
    fn step_if_pending_skips_empty_rounds() {
        let mut net = net3();
        assert!(!net.step_if_pending());
        assert_eq!(net.rounds(), 0);
        net.send(n(0), n(1), 1);
        assert!(net.step_if_pending());
        assert_eq!(net.rounds(), 1);
    }

    #[test]
    fn inbox_drain_clears() {
        let mut net = net3();
        net.send(n(0), n(1), 1);
        net.step();
        assert_eq!(net.nodes_with_mail().collect::<Vec<_>>(), vec![n(1)]);
        assert_eq!(net.drain_inbox(n(1)).len(), 1);
        assert!(net.drain_inbox(n(1)).is_empty());
        assert_eq!(net.nodes_with_mail().count(), 0);
    }

    #[test]
    fn nodes_with_mail_into_reuses_buffer() {
        let mut net = net3();
        net.send(n(0), n(1), 1);
        net.send(n(0), n(2), 2);
        net.step();
        let mut buf = vec![n(99)]; // stale content must be cleared
        NetworkEngine::nodes_with_mail_into(&net, &mut buf);
        assert_eq!(buf, vec![n(1), n(2)]);
        let mut mail = Vec::new();
        net.drain_inbox_into(n(1), &mut mail);
        assert_eq!(mail.len(), 1);
        net.drain_inbox_into(n(1), &mut mail);
        assert!(mail.is_empty());
    }

    #[test]
    fn removed_node_inbox_discarded() {
        let mut net = net3();
        net.send(n(0), n(1), 1);
        net.step();
        net.remove_node(n(1));
        net.add_node(n(1));
        assert!(net.drain_inbox(n(1)).is_empty());
    }

    #[test]
    fn classifier_breaks_down_sent_messages() {
        let mut net = net3();
        NetworkEngine::set_classifier(&mut net, &["small", "big"], |p: &u32| (*p >= 10) as usize);
        net.send(n(0), n(1), 3);
        net.send(n(0), n(2), 30);
        net.send(n(1), n(2), 40);
        let (labels, counts) = NetworkEngine::kind_counts(&net);
        assert_eq!(labels, &["small", "big"]);
        assert_eq!(counts, &[1, 2]);
    }
}
