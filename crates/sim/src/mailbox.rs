//! The flat mailbox arena shared by both engines: membership, inboxes,
//! the dropped-message log, counters, and the optional per-kind tally.
//!
//! Both [`crate::SyncNetwork`] and [`crate::AsyncNetwork`] used to keep
//! membership in a `BTreeSet<NodeId>` and inboxes in a
//! `BTreeMap<NodeId, Vec<Envelope>>` — a pointer-chasing tree lookup per
//! delivery and an O(live-nodes) full-map walk per
//! [`crate::NetworkEngine::nodes_with_mail_into`] call. [`Mailboxes`]
//! replaces both with a slot arena:
//!
//! - **dense id → slot translation**: ids below [`DENSE_ID_LIMIT`] index a
//!   flat `Vec<u32>` directly (grown on demand); larger ids spill to a hash
//!   map, mirroring the graph arena's interner;
//! - **slot-indexed inboxes**: each slot owns a reusable `Vec<Envelope>`
//!   that keeps its capacity across drains — steady-state delivery and
//!   drain allocate nothing;
//! - **a maintained dirty-slot list**: slots holding mail register in an
//!   unordered list (with a back-pointer for O(1) removal), so
//!   `nodes_with_mail_into` costs O(d log d) in the number of mailboxes
//!   with mail, independent of membership size;
//! - **an envelope-buffer slab**: removed processors' slots keep their
//!   (cleared) inbox vectors and queue on a free list, so churn
//!   (remove + re-add) recycles warmed buffers instead of reallocating —
//!   steady-state stepping stays allocation-free.
//!
//! Delivery order is untouched: envelopes append to their inbox in
//! delivery order, and `nodes_with_mail_into` still reports ascending
//! [`NodeId`]s (the dirty list is sorted on read), exactly matching the
//! old `BTreeMap` iteration order.

use xheal_graph::{FxHashMap, NodeId};

use crate::engine::{Counters, Envelope};

/// Ids below this bound translate through the flat dense table; ids at or
/// above it go through the hashed spill map. Matches the graph arena's
/// dense-interner policy.
pub(crate) const DENSE_ID_LIMIT: u64 = 1 << 24;

/// Sentinel for "no slot" / "not in the dirty list".
const NONE: u32 = u32::MAX;

/// Minimum inbox capacity reserved when a slot first receives mail in a
/// round. Per-round fan-in beyond this is possible but far off the tail of
/// any balls-in-bins delivery pattern, so hot-path pushes never grow.
const MIN_INBOX_CAP: usize = 16;

/// One processor slot: its id, liveness, inbox, and dirty-list position.
#[derive(Clone, Debug)]
struct Slot<M> {
    node: NodeId,
    alive: bool,
    /// Position in the dirty list, or [`NONE`] when the inbox is empty.
    dirty_pos: u32,
    inbox: Vec<Envelope<M>>,
}

/// The optional per-kind tally: a classifier installed by the protocol
/// layer (see [`crate::NetworkEngine::set_classifier`]) plus one send
/// counter per kind label.
#[derive(Clone, Debug)]
struct KindTally<M> {
    labels: &'static [&'static str],
    classify: fn(&M) -> usize,
    sent: Vec<u64>,
}

/// The flat mailbox arena (see the module docs).
#[derive(Clone, Debug)]
pub(crate) struct Mailboxes<M> {
    /// Dense id → slot translation (ids < [`DENSE_ID_LIMIT`]).
    dense: Vec<u32>,
    /// Hashed spill for ids at or above the dense bound.
    spill: FxHashMap<u64, u32>,
    slots: Vec<Slot<M>>,
    /// Recyclable slot indices of removed processors.
    free: Vec<u32>,
    /// Registered (alive) processors.
    live: usize,
    /// Slots with non-empty inboxes, unordered; each slot back-points via
    /// `dirty_pos` so removal is a swap.
    dirty: Vec<u32>,
    /// Messages dropped since the last drain.
    dropped: Vec<Envelope<M>>,
    counters: Counters,
    kinds: Option<KindTally<M>>,
    /// Test probe counting the slots examined by `nodes_with_mail_into`
    /// — the no-full-scan regression guard.
    #[cfg(test)]
    pub(crate) scan_probe: std::cell::Cell<u64>,
}

impl<M> Default for Mailboxes<M> {
    fn default() -> Self {
        Mailboxes::new()
    }
}

impl<M> Mailboxes<M> {
    pub(crate) fn new() -> Self {
        Mailboxes {
            dense: Vec::new(),
            spill: FxHashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            dirty: Vec::new(),
            dropped: Vec::new(),
            counters: Counters::default(),
            kinds: None,
            #[cfg(test)]
            scan_probe: std::cell::Cell::new(0),
        }
    }

    /// Slot of `v`, if it was ever registered (alive or not).
    fn slot_of(&self, v: NodeId) -> Option<u32> {
        let raw = v.as_u64();
        let s = if raw < DENSE_ID_LIMIT {
            *self.dense.get(raw as usize)?
        } else {
            *self.spill.get(&raw)?
        };
        (s != NONE).then_some(s)
    }

    /// Registers `v`. Idempotent; recycles a freed slot (and its warmed
    /// inbox buffer) when one is available.
    pub(crate) fn add(&mut self, v: NodeId) {
        if let Some(s) = self.slot_of(v) {
            let slot = &mut self.slots[s as usize];
            if !slot.alive {
                slot.alive = true;
                self.live += 1;
            }
            return;
        }
        let s = match self.free.pop() {
            Some(s) => {
                let slot = &mut self.slots[s as usize];
                slot.node = v;
                slot.alive = true;
                debug_assert!(slot.inbox.is_empty() && slot.dirty_pos == NONE);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    node: v,
                    alive: true,
                    dirty_pos: NONE,
                    inbox: Vec::new(),
                });
                s
            }
        };
        let raw = v.as_u64();
        if raw < DENSE_ID_LIMIT {
            if self.dense.len() <= raw as usize {
                self.dense.resize(raw as usize + 1, NONE);
            }
            self.dense[raw as usize] = s;
        } else {
            self.spill.insert(raw, s);
        }
        self.live += 1;
    }

    /// Unregisters `v`, discarding its pending inbox. The slot keeps its
    /// (cleared, still-warm) inbox buffer and queues on the free list —
    /// the envelope slab later registrations draw from.
    pub(crate) fn remove(&mut self, v: NodeId) {
        let Some(s) = self.slot_of(v) else {
            return;
        };
        if !self.slots[s as usize].alive {
            return;
        }
        self.undirty(s);
        let slot = &mut self.slots[s as usize];
        slot.alive = false;
        slot.inbox.clear();
        self.live -= 1;
        // Unmap the id and free the slot: a re-added id must not resurrect
        // the discarded inbox, and dead ids must not pin slots forever.
        let raw = v.as_u64();
        if raw < DENSE_ID_LIMIT {
            self.dense[raw as usize] = NONE;
        } else {
            self.spill.remove(&raw);
        }
        self.free.push(s);
    }

    /// Is `v` registered?
    pub(crate) fn contains(&self, v: NodeId) -> bool {
        self.slot_of(v)
            .is_some_and(|s| self.slots[s as usize].alive)
    }

    /// Number of registered processors.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Delivers `env` into its recipient's inbox, or logs it as dropped
    /// when the recipient is gone (or `doomed` — a fault already claimed
    /// it). Returns whether it was delivered. Counter upkeep for `dropped`
    /// happens here; the per-round `messages` total is the caller's (it
    /// adds the returned delivery count once per step).
    pub(crate) fn deliver(&mut self, env: Envelope<M>, doomed: bool) -> bool {
        match self.slot_of(env.to) {
            Some(s) if !doomed && self.slots[s as usize].alive => {
                let slot = &mut self.slots[s as usize];
                if slot.dirty_pos == NONE {
                    // Empty → nonempty: floor the inbox capacity so a burst
                    // of fan-in this round never reallocates mid-step. Each
                    // slot Vec pays this at most once — capacity never
                    // shrinks — so steady-state delivery stays alloc-free.
                    if slot.inbox.capacity() < MIN_INBOX_CAP {
                        slot.inbox.reserve(MIN_INBOX_CAP);
                    }
                    slot.dirty_pos = self.dirty.len() as u32;
                    self.dirty.push(s);
                }
                slot.inbox.push(env);
                true
            }
            _ => {
                self.counters.dropped += 1;
                self.dropped.push(env);
                false
            }
        }
    }

    /// Appends the ids of slots holding mail to `out` (cleared first),
    /// ascending. Work is O(d log d) in the number of dirty slots —
    /// membership size never enters.
    pub(crate) fn nodes_with_mail_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.reserve(self.dirty.len());
        for &s in &self.dirty {
            #[cfg(test)]
            self.scan_probe.set(self.scan_probe.get() + 1);
            out.push(self.slots[s as usize].node);
        }
        out.sort_unstable();
    }

    /// Moves all mail waiting at `v` into `out` (cleared first), keeping
    /// the slot's buffer capacity for the next delivery burst.
    pub(crate) fn drain_inbox_into(&mut self, v: NodeId, out: &mut Vec<Envelope<M>>) {
        out.clear();
        let Some(s) = self.slot_of(v) else {
            return;
        };
        if self.slots[s as usize].inbox.is_empty() {
            return;
        }
        self.undirty(s);
        out.append(&mut self.slots[s as usize].inbox);
    }

    /// Moves every message dropped since the last call into `out`
    /// (cleared first).
    pub(crate) fn drain_dropped_into(&mut self, out: &mut Vec<Envelope<M>>) {
        out.clear();
        out.append(&mut self.dropped);
    }

    /// Removes `s` from the dirty list if present (O(1) via the slot's
    /// back-pointer; the displaced tail entry is re-pointed).
    fn undirty(&mut self, s: u32) {
        let pos = self.slots[s as usize].dirty_pos;
        if pos == NONE {
            return;
        }
        self.slots[s as usize].dirty_pos = NONE;
        self.dirty.swap_remove(pos as usize);
        if let Some(&moved) = self.dirty.get(pos as usize) {
            self.slots[moved as usize].dirty_pos = pos;
        }
    }

    /// Cost counters so far.
    pub(crate) fn counters(&self) -> Counters {
        self.counters
    }

    /// Counts one stepped round.
    pub(crate) fn count_round(&mut self) {
        self.counters.rounds += 1;
    }

    /// Counts `delivered` messages delivered this round.
    pub(crate) fn count_delivered(&mut self, delivered: usize) {
        self.counters.messages += delivered as u64;
    }

    /// Installs the per-kind payload classifier (resetting any tally).
    pub(crate) fn set_classifier(
        &mut self,
        labels: &'static [&'static str],
        classify: fn(&M) -> usize,
    ) {
        self.kinds = Some(KindTally {
            labels,
            classify,
            sent: vec![0; labels.len()],
        });
    }

    /// Tallies one sent payload against its kind (no-op when no
    /// classifier is installed).
    pub(crate) fn tally(&mut self, payload: &M) {
        if let Some(k) = &mut self.kinds {
            let i = (k.classify)(payload);
            if let Some(c) = k.sent.get_mut(i) {
                *c += 1;
            }
        }
    }

    /// The per-kind sent-message breakdown (empty without a classifier).
    pub(crate) fn kind_counts(&self) -> (&'static [&'static str], &[u64]) {
        match &self.kinds {
            Some(k) => (k.labels, &k.sent),
            None => (&[], &[]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn env(from: u64, to: u64, payload: u32) -> Envelope<u32> {
        Envelope {
            from: n(from),
            to: n(to),
            payload,
        }
    }

    #[test]
    fn membership_add_remove_recycles_slots() {
        let mut mb: Mailboxes<u32> = Mailboxes::new();
        for i in 0..10 {
            mb.add(n(i));
        }
        assert_eq!(mb.len(), 10);
        mb.add(n(3)); // idempotent
        assert_eq!(mb.len(), 10);
        mb.remove(n(3));
        assert!(!mb.contains(n(3)));
        assert_eq!(mb.len(), 9);
        let slots_before = mb.slots.len();
        mb.add(n(77)); // reuses the freed slot
        assert_eq!(mb.slots.len(), slots_before);
        assert!(mb.contains(n(77)));
    }

    #[test]
    fn spilled_ids_work_like_dense_ones() {
        let mut mb: Mailboxes<u32> = Mailboxes::new();
        let big = DENSE_ID_LIMIT + 5;
        mb.add(n(1));
        mb.add(n(big));
        assert!(mb.contains(n(big)));
        assert!(mb.deliver(env(1, big, 9), false));
        let mut out = Vec::new();
        mb.nodes_with_mail_into(&mut out);
        assert_eq!(out, vec![n(big)]);
        mb.remove(n(big));
        assert!(!mb.contains(n(big)));
        mb.drain_inbox_into(n(big), &mut Vec::new());
    }

    #[test]
    fn removed_inbox_is_discarded_not_resurrected() {
        let mut mb: Mailboxes<u32> = Mailboxes::new();
        mb.add(n(1));
        mb.add(n(2));
        assert!(mb.deliver(env(1, 2, 7), false));
        mb.remove(n(2));
        mb.add(n(2));
        let mut out = vec![env(0, 0, 99)];
        mb.drain_inbox_into(n(2), &mut out);
        assert!(out.is_empty(), "stale mail survived remove/add");
        let mut mail = Vec::new();
        mb.nodes_with_mail_into(&mut mail);
        assert!(mail.is_empty());
    }

    #[test]
    fn deliveries_to_dead_or_doomed_recipients_drop() {
        let mut mb: Mailboxes<u32> = Mailboxes::new();
        mb.add(n(1));
        assert!(!mb.deliver(env(1, 2, 5), false), "unregistered recipient");
        assert!(!mb.deliver(env(1, 1, 6), true), "doomed in flight");
        assert_eq!(mb.counters().dropped, 2);
        let mut lost = Vec::new();
        mb.drain_dropped_into(&mut lost);
        assert_eq!(lost.len(), 2);
        mb.drain_dropped_into(&mut lost);
        assert!(lost.is_empty());
    }

    #[test]
    fn dirty_list_tracks_mail_and_sorts_ascending() {
        let mut mb: Mailboxes<u32> = Mailboxes::new();
        for i in 0..6 {
            mb.add(n(i));
        }
        for &to in &[4u64, 1, 5, 1] {
            assert!(mb.deliver(env(0, to, to as u32), false));
        }
        let mut out = Vec::new();
        mb.nodes_with_mail_into(&mut out);
        assert_eq!(out, vec![n(1), n(4), n(5)]);
        let mut mail = Vec::new();
        mb.drain_inbox_into(n(4), &mut mail);
        assert_eq!(mail.len(), 1);
        mb.nodes_with_mail_into(&mut out);
        assert_eq!(out, vec![n(1), n(5)]);
        mb.drain_inbox_into(n(1), &mut mail);
        assert_eq!(mail.len(), 2, "both deliveries to 1 queued in order");
        assert_eq!(mail[0].payload, 1);
    }

    #[test]
    fn nodes_with_mail_never_scans_the_full_membership() {
        // The no-full-scan regression guard: 50k registered processors,
        // three with mail — the scan probe must count exactly the dirty
        // slots, not the membership.
        let mut mb: Mailboxes<u32> = Mailboxes::new();
        for i in 0..50_000 {
            mb.add(n(i));
        }
        for &to in &[17u64, 40_001, 9_999] {
            assert!(mb.deliver(env(0, to, 1), false));
        }
        let mut out = Vec::new();
        mb.scan_probe.set(0);
        mb.nodes_with_mail_into(&mut out);
        assert_eq!(out, vec![n(17), n(9_999), n(40_001)]);
        assert_eq!(
            mb.scan_probe.get(),
            3,
            "nodes_with_mail_into touched more slots than have mail"
        );
    }

    #[test]
    fn kind_tally_counts_sends_per_class() {
        let mut mb: Mailboxes<u32> = Mailboxes::new();
        mb.set_classifier(&["even", "odd"], |p| (*p % 2) as usize);
        for p in 0..7u32 {
            mb.tally(&p);
        }
        let (labels, counts) = mb.kind_counts();
        assert_eq!(labels, &["even", "odd"]);
        assert_eq!(counts, &[4, 3]);
        let fresh: Mailboxes<u32> = Mailboxes::new();
        assert_eq!(fresh.kind_counts(), (&[] as &[&str], &[] as &[u64]));
    }
}
