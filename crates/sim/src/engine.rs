//! The engine abstraction: what any message-delivery substrate must provide.

use xheal_graph::NodeId;
use xheal_trace::SharedTracer;

/// One in-flight message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Payload (arbitrary size — LOCAL model).
    pub payload: M,
}

/// Cumulative cost counters of a network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Synchronous rounds stepped.
    pub rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Messages dropped (recipient left the network, or a fault ate them).
    pub dropped: u64,
}

impl Counters {
    /// Component-wise difference (`self - earlier`), for per-operation costs.
    pub fn since(&self, earlier: Counters) -> Counters {
        Counters {
            rounds: self.rounds - earlier.rounds,
            messages: self.messages - earlier.messages,
            dropped: self.dropped - earlier.dropped,
        }
    }
}

/// A message-delivery substrate for the distributed protocol.
///
/// Implementations own the processor membership, the in-flight message
/// store, and the cost counters (the paper's success metrics 4 and 5:
/// recovery time in rounds, communication in messages). The protocol layer
/// (`xheal-dist`'s actor runtime) is generic over this trait, so the same
/// per-node state machines run over lockstep delivery ([`crate::SyncNetwork`])
/// or latency/reordering/fault delivery ([`crate::AsyncNetwork`]).
///
/// The contract every implementation upholds:
///
/// - messages are never delivered in the round they were sent — the earliest
///   delivery is the next [`NetworkEngine::step`];
/// - delivery is deterministic given the send sequence (engines with
///   randomness must seed it);
/// - messages addressed to unregistered processors are *dropped*, counted in
///   [`Counters::dropped`], and surfaced through
///   [`NetworkEngine::drain_dropped_into`] so the protocol layer can observe
///   the loss.
pub trait NetworkEngine<M> {
    /// Registers a processor. Idempotent.
    fn add_node(&mut self, v: NodeId);

    /// Removes a processor; its pending inbox is discarded and in-flight
    /// messages to it will be dropped at delivery time.
    fn remove_node(&mut self, v: NodeId);

    /// Is the processor registered?
    fn contains(&self, v: NodeId) -> bool;

    /// Number of registered processors.
    fn len(&self) -> usize;

    /// True when no processors are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Submits a message for future delivery.
    ///
    /// # Panics
    ///
    /// Panics if the sender is not registered (recipients may legitimately
    /// disappear before delivery; senders cannot).
    fn send(&mut self, from: NodeId, to: NodeId, payload: M);

    /// Advances one round, delivering everything due. Returns the number of
    /// messages delivered into inboxes this round.
    fn step(&mut self) -> usize;

    /// Are any messages still staged or in flight?
    fn has_pending(&self) -> bool;

    /// Steps only if messages are pending; returns whether a round ran.
    fn step_if_pending(&mut self) -> bool {
        if !self.has_pending() {
            return false;
        }
        self.step();
        true
    }

    /// Appends the ids of nodes with non-empty inboxes to `out`, ascending.
    /// Takes a caller-owned buffer so the protocol loop allocates nothing
    /// per round.
    fn nodes_with_mail_into(&self, out: &mut Vec<NodeId>);

    /// Moves all messages waiting at `v` into `out` (cleared first).
    fn drain_inbox_into(&mut self, v: NodeId, out: &mut Vec<Envelope<M>>);

    /// Moves every message dropped since the last call into `out` (cleared
    /// first) — the protocol layer uses these to cancel expectations on
    /// responses that will never arrive.
    fn drain_dropped_into(&mut self, out: &mut Vec<Envelope<M>>);

    /// Cost counters so far.
    fn counters(&self) -> Counters;

    /// Installs a payload classifier for per-kind send accounting: every
    /// subsequent [`NetworkEngine::send`] tallies its payload under
    /// `labels[classify(&payload)]` (out-of-range indices are ignored).
    /// Installing a classifier resets any previous tally. The protocol
    /// layer uses this to break communication complexity down by message
    /// type without the engine knowing the payload enum.
    ///
    /// The default implementation ignores the classifier — engines
    /// without per-kind accounting report empty [`NetworkEngine::kind_counts`].
    fn set_classifier(&mut self, labels: &'static [&'static str], classify: fn(&M) -> usize) {
        let _ = (labels, classify);
    }

    /// The per-kind sent-message breakdown as parallel `(labels, counts)`
    /// slices — both empty until a classifier is installed via
    /// [`NetworkEngine::set_classifier`].
    fn kind_counts(&self) -> (&'static [&'static str], &[u64]) {
        (&[], &[])
    }

    /// Attaches (or detaches, with `None`) a tracer recording a `net.step`
    /// transport instant per delivering round. The default implementation
    /// ignores the handle — engines without transport instrumentation stay
    /// silent in traces.
    fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        let _ = tracer;
    }
}
