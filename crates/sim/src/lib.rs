//! # xheal-sim
//!
//! Message-delivery substrates for the paper's distributed model (Section
//! 2): the protocol layer in `xheal-dist` is written against the
//! [`NetworkEngine`] trait (membership, send, step, drain, counters) and
//! this crate ships two implementations of it:
//!
//! - [`SyncNetwork`] — the **LOCAL model taken literally**: unbounded
//!   message sizes, reliable private channels, every message delivered
//!   exactly one synchronous round after it was sent. This is the reference
//!   substrate; the paper's recovery-time (rounds) and communication
//!   (messages) metrics are read straight off its [`Counters`].
//! - [`AsyncNetwork`] — a **deterministic event queue** modelling realistic
//!   delivery: every directed link gets a seeded base latency, messages can
//!   carry extra jitter and overtake each other (reordering), and an
//!   optional seeded fault rate loses messages in flight. With
//!   [`AsyncConfig::zero_latency`] it degenerates to the synchronous
//!   engine's behaviour, which the cross-validation suite exploits to pin
//!   the actor protocol: bit-identical topologies across engines.
//!
//! Both engines count rounds, delivered messages, and drops — exactly the
//! paper's success metrics 4 (recovery time) and 5 (communication
//! complexity) plus the loss the fault injector needs to observe. Dropped
//! messages are kept (not just counted) and handed to the protocol layer
//! via [`NetworkEngine::drain_dropped_into`], which is how the actor
//! runtime in `xheal-dist` cancels expectations on replies that will never
//! arrive.
//!
//! The engines are payload-generic; `xheal-dist` instantiates them with the
//! Xheal recovery protocol's message enum.
//!
//! # Examples
//!
//! ```
//! use xheal_graph::NodeId;
//! use xheal_sim::SyncNetwork;
//!
//! let mut net: SyncNetwork<&'static str> = SyncNetwork::new();
//! let (a, b) = (NodeId::new(1), NodeId::new(2));
//! net.add_node(a);
//! net.add_node(b);
//! net.send(a, b, "ping");
//! assert_eq!(net.step(), 1); // delivered in the next round
//! let inbox = net.drain_inbox(b);
//! assert_eq!(inbox[0].payload, "ping");
//! assert_eq!(net.rounds(), 1);
//! assert_eq!(net.messages(), 1);
//! ```
//!
//! The same exchange under latency — generic code sees one trait:
//!
//! ```
//! use xheal_graph::NodeId;
//! use xheal_sim::{AsyncConfig, AsyncNetwork, NetworkEngine};
//!
//! let mut net: AsyncNetwork<u32> = AsyncNetwork::new(AsyncConfig::uniform(1, 4, 7));
//! net.add_node(NodeId::new(1));
//! net.add_node(NodeId::new(2));
//! net.send(NodeId::new(1), NodeId::new(2), 99);
//! let mut rounds = 0;
//! while net.has_pending() {
//!     net.step();
//!     rounds += 1;
//! }
//! assert!((1..=4).contains(&rounds)); // the link's seeded latency
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod event_queue;
mod mailbox;
mod sync;

pub use engine::{Counters, Envelope, NetworkEngine};
pub use event_queue::{AsyncConfig, AsyncNetwork};
pub use sync::SyncNetwork;
