//! # xheal-sim
//!
//! A synchronous-round message-passing engine for the paper's distributed
//! model (Section 2): the **LOCAL** model — unbounded message sizes, one hop
//! per round, reliable private channels. Messages staged during a round are
//! delivered at the next [`SyncNetwork::step`]; the engine counts rounds and
//! delivered messages, which are exactly the paper's success metrics 4
//! (recovery time) and 5 (communication complexity).
//!
//! The engine is payload-generic; `xheal-dist` instantiates it with the
//! Xheal recovery protocol's message enum.
//!
//! # Examples
//!
//! ```
//! use xheal_graph::NodeId;
//! use xheal_sim::SyncNetwork;
//!
//! let mut net: SyncNetwork<&'static str> = SyncNetwork::new();
//! let (a, b) = (NodeId::new(1), NodeId::new(2));
//! net.add_node(a);
//! net.add_node(b);
//! net.send(a, b, "ping");
//! assert_eq!(net.step(), 1); // delivered in the next round
//! let inbox = net.drain_inbox(b);
//! assert_eq!(inbox[0].payload, "ping");
//! assert_eq!(net.rounds(), 1);
//! assert_eq!(net.messages(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};

use xheal_graph::NodeId;

/// One in-flight message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Payload (arbitrary size — LOCAL model).
    pub payload: M,
}

/// Cumulative cost counters of a network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Synchronous rounds stepped.
    pub rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Messages dropped because the recipient left the network.
    pub dropped: u64,
}

impl Counters {
    /// Component-wise difference (`self - earlier`), for per-operation costs.
    pub fn since(&self, earlier: Counters) -> Counters {
        Counters {
            rounds: self.rounds - earlier.rounds,
            messages: self.messages - earlier.messages,
            dropped: self.dropped - earlier.dropped,
        }
    }
}

/// The synchronous-round engine.
#[derive(Clone, Debug, Default)]
pub struct SyncNetwork<M> {
    nodes: BTreeSet<NodeId>,
    staged: Vec<Envelope<M>>,
    inboxes: BTreeMap<NodeId, Vec<Envelope<M>>>,
    counters: Counters,
}

impl<M> SyncNetwork<M> {
    /// Creates an empty network.
    pub fn new() -> Self {
        SyncNetwork {
            nodes: BTreeSet::new(),
            staged: Vec::new(),
            inboxes: BTreeMap::new(),
            counters: Counters::default(),
        }
    }

    /// Registers a processor. Idempotent.
    pub fn add_node(&mut self, v: NodeId) {
        self.nodes.insert(v);
    }

    /// Removes a processor; its pending inbox is discarded and any staged
    /// messages to it will be dropped at delivery time (the adversary
    /// deleted it mid-protocol).
    pub fn remove_node(&mut self, v: NodeId) {
        self.nodes.remove(&v);
        self.inboxes.remove(&v);
    }

    /// Is the processor registered?
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// Number of registered processors.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no processors are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Stages a message for delivery at the next [`SyncNetwork::step`].
    ///
    /// # Panics
    ///
    /// Panics if the sender is not registered (recipients may legitimately
    /// disappear before delivery; senders cannot).
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        assert!(self.nodes.contains(&from), "sender {from} not registered");
        self.staged.push(Envelope { from, to, payload });
    }

    /// Advances one synchronous round, delivering all staged messages.
    /// Returns the number delivered.
    pub fn step(&mut self) -> usize {
        self.counters.rounds += 1;
        let mut delivered = 0;
        for env in self.staged.drain(..) {
            if self.nodes.contains(&env.to) {
                self.inboxes.entry(env.to).or_default().push(env);
                delivered += 1;
            } else {
                self.counters.dropped += 1;
            }
        }
        self.counters.messages += delivered as u64;
        delivered
    }

    /// Steps only if messages are staged; returns whether a round ran.
    pub fn step_if_pending(&mut self) -> bool {
        if self.staged.is_empty() {
            return false;
        }
        self.step();
        true
    }

    /// Takes all messages waiting at `v`.
    pub fn drain_inbox(&mut self, v: NodeId) -> Vec<Envelope<M>> {
        self.inboxes.remove(&v).unwrap_or_default()
    }

    /// Nodes with non-empty inboxes, ascending.
    pub fn nodes_with_mail(&self) -> Vec<NodeId> {
        self.inboxes.keys().copied().collect()
    }

    /// Are messages staged for the next round?
    pub fn has_staged(&self) -> bool {
        !self.staged.is_empty()
    }

    /// Cost counters so far.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Rounds stepped so far.
    pub fn rounds(&self) -> u64 {
        self.counters.rounds
    }

    /// Messages delivered so far.
    pub fn messages(&self) -> u64 {
        self.counters.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn net3() -> SyncNetwork<u32> {
        let mut net = SyncNetwork::new();
        for i in 0..3 {
            net.add_node(n(i));
        }
        net
    }

    #[test]
    fn delivery_is_next_round() {
        let mut net = net3();
        net.send(n(0), n(1), 7);
        assert!(net.drain_inbox(n(1)).is_empty(), "not delivered yet");
        net.step();
        let inbox = net.drain_inbox(n(1));
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].from, n(0));
        assert_eq!(inbox[0].payload, 7);
    }

    #[test]
    fn messages_to_dead_nodes_are_dropped() {
        let mut net = net3();
        net.send(n(0), n(2), 1);
        net.remove_node(n(2));
        net.step();
        assert_eq!(net.counters().dropped, 1);
        assert_eq!(net.messages(), 0);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_sender_panics() {
        let mut net = net3();
        net.send(n(9), n(0), 1);
    }

    #[test]
    fn counters_accumulate_and_diff() {
        let mut net = net3();
        net.send(n(0), n(1), 1);
        net.step();
        let snapshot = net.counters();
        net.send(n(1), n(2), 2);
        net.send(n(1), n(0), 3);
        net.step();
        let delta = net.counters().since(snapshot);
        assert_eq!(delta.rounds, 1);
        assert_eq!(delta.messages, 2);
    }

    #[test]
    fn step_if_pending_skips_empty_rounds() {
        let mut net = net3();
        assert!(!net.step_if_pending());
        assert_eq!(net.rounds(), 0);
        net.send(n(0), n(1), 1);
        assert!(net.step_if_pending());
        assert_eq!(net.rounds(), 1);
    }

    #[test]
    fn inbox_drain_clears() {
        let mut net = net3();
        net.send(n(0), n(1), 1);
        net.step();
        assert_eq!(net.nodes_with_mail(), vec![n(1)]);
        assert_eq!(net.drain_inbox(n(1)).len(), 1);
        assert!(net.drain_inbox(n(1)).is_empty());
        assert!(net.nodes_with_mail().is_empty());
    }

    #[test]
    fn removed_node_inbox_discarded() {
        let mut net = net3();
        net.send(n(0), n(1), 1);
        net.step();
        net.remove_node(n(1));
        net.add_node(n(1));
        assert!(net.drain_inbox(n(1)).is_empty());
    }
}
