//! The asynchronous engine: a deterministic event queue with per-link
//! latency, message reordering, and optional drop faults.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xheal_graph::NodeId;

use crate::engine::{Counters, Envelope, NetworkEngine};

/// Delivery model of an [`AsyncNetwork`]: per-link base latency, per-message
/// jitter, and an optional fault rate — all driven by one seed, so every run
/// is reproducible.
///
/// Each directed link `(from, to)` gets a fixed base latency drawn from
/// `[min_latency, max_latency]` by hashing the endpoints with the seed;
/// every message additionally draws jitter from `[0, jitter]` off the
/// engine's RNG. Messages on slow links overtake nothing; messages on fast
/// links overtake in-flight traffic sent earlier — genuine reordering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsyncConfig {
    /// Smallest per-link base latency, in rounds (≥ 1: nothing is delivered
    /// in its send round, matching the LOCAL model).
    pub min_latency: u64,
    /// Largest per-link base latency, in rounds.
    pub max_latency: u64,
    /// Extra uniform per-message delay in `[0, jitter]` rounds.
    pub jitter: u64,
    /// Probability a message is silently lost in flight (a drop fault),
    /// decided at send time from the seeded RNG. Lost messages surface in
    /// [`Counters::dropped`] and [`NetworkEngine::drain_dropped_into`] when
    /// their delivery round arrives.
    pub drop_prob: f64,
    /// Seed of the engine's randomness (link latencies, jitter, faults).
    pub seed: u64,
}

impl AsyncConfig {
    /// The degenerate model equal to [`crate::SyncNetwork`]'s delivery: every
    /// message arrives exactly one round after it was sent, nothing is lost,
    /// and the RNG is never consumed. The cross-validation suite runs the
    /// actor protocol over this configuration and asserts bit-identical
    /// topologies with the synchronous engine.
    pub fn zero_latency() -> Self {
        AsyncConfig {
            min_latency: 1,
            max_latency: 1,
            jitter: 0,
            drop_prob: 0.0,
            seed: 0,
        }
    }

    /// Uniform per-link base latencies in `[min, max]` rounds, no jitter, no
    /// faults.
    ///
    /// # Panics
    ///
    /// Panics if `min` is 0 or `min > max`.
    pub fn uniform(min: u64, max: u64, seed: u64) -> Self {
        assert!(min >= 1, "latency below one round breaks the LOCAL model");
        assert!(min <= max, "empty latency range");
        AsyncConfig {
            min_latency: min,
            max_latency: max,
            jitter: 0,
            drop_prob: 0.0,
            seed,
        }
    }

    /// Adds per-message jitter of up to `jitter` rounds.
    pub fn with_jitter(mut self, jitter: u64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Adds drop faults with the given per-message probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability out of range");
        self.drop_prob = p;
        self
    }

    /// The worst-case delivery delay of any single message under this model.
    pub fn worst_case_delay(&self) -> u64 {
        self.max_latency + self.jitter
    }

    /// Fixed base latency of the directed link `from → to`.
    fn link_latency(&self, from: NodeId, to: NodeId) -> u64 {
        if self.min_latency == self.max_latency {
            return self.min_latency;
        }
        let span = self.max_latency - self.min_latency + 1;
        self.min_latency + mix3(self.seed, from.as_u64(), to.as_u64()) % span
    }
}

/// SplitMix64-style avalanche of three words — the per-link latency hash.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(c);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One scheduled delivery. Ordered by `(due, seq)` only, so the heap's pop
/// order — and therefore the whole simulation — is deterministic and
/// independent of the payload type.
#[derive(Clone, Debug)]
struct Scheduled<M> {
    due: u64,
    seq: u64,
    /// A drop fault already claimed this message; at `due` it goes to the
    /// dropped log instead of an inbox.
    doomed: bool,
    env: Envelope<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    /// Reversed so the max-heap [`BinaryHeap`] pops the *earliest* delivery.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// The asynchronous event-queue engine.
///
/// Rounds still exist (recovery time stays measurable in the paper's unit)
/// but messages take a per-link number of rounds to arrive, can overtake
/// each other, and can be lost to seeded drop faults. With
/// [`AsyncConfig::zero_latency`] it is observationally equivalent to
/// [`crate::SyncNetwork`].
///
/// # Examples
///
/// ```
/// use xheal_graph::NodeId;
/// use xheal_sim::{AsyncConfig, AsyncNetwork, NetworkEngine};
///
/// let mut net: AsyncNetwork<&'static str> =
///     AsyncNetwork::new(AsyncConfig::uniform(1, 3, 42));
/// let (a, b) = (NodeId::new(1), NodeId::new(2));
/// net.add_node(a);
/// net.add_node(b);
/// net.send(a, b, "ping");
/// let mut inbox = Vec::new();
/// while net.has_pending() {
///     net.step();
/// }
/// net.drain_inbox_into(b, &mut inbox);
/// assert_eq!(inbox[0].payload, "ping");
/// assert!(net.counters().rounds >= 1 && net.counters().rounds <= 3);
/// ```
#[derive(Clone, Debug)]
pub struct AsyncNetwork<M> {
    nodes: BTreeSet<NodeId>,
    queue: BinaryHeap<Scheduled<M>>,
    inboxes: BTreeMap<NodeId, Vec<Envelope<M>>>,
    dropped: Vec<Envelope<M>>,
    now: u64,
    seq: u64,
    rng: StdRng,
    config: AsyncConfig,
    counters: Counters,
}

impl<M> AsyncNetwork<M> {
    /// Creates an empty network with the given delivery model.
    pub fn new(config: AsyncConfig) -> Self {
        AsyncNetwork {
            nodes: BTreeSet::new(),
            queue: BinaryHeap::new(),
            inboxes: BTreeMap::new(),
            dropped: Vec::new(),
            now: 0,
            seq: 0,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            counters: Counters::default(),
        }
    }

    /// The delivery model in force.
    pub fn config(&self) -> &AsyncConfig {
        &self.config
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

impl<M> Default for AsyncNetwork<M> {
    fn default() -> Self {
        AsyncNetwork::new(AsyncConfig::zero_latency())
    }
}

impl<M> NetworkEngine<M> for AsyncNetwork<M> {
    fn add_node(&mut self, v: NodeId) {
        self.nodes.insert(v);
    }

    fn remove_node(&mut self, v: NodeId) {
        self.nodes.remove(&v);
        self.inboxes.remove(&v);
    }

    fn contains(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        assert!(self.nodes.contains(&from), "sender {from} not registered");
        let mut delay = self.config.link_latency(from, to);
        if self.config.jitter > 0 {
            delay += self.rng.random_range(0..=self.config.jitter);
        }
        let doomed = self.config.drop_prob > 0.0 && self.rng.random_bool(self.config.drop_prob);
        self.seq += 1;
        self.queue.push(Scheduled {
            due: self.now + delay,
            seq: self.seq,
            doomed,
            env: Envelope { from, to, payload },
        });
    }

    fn step(&mut self) -> usize {
        self.now += 1;
        self.counters.rounds += 1;
        let mut delivered = 0;
        while self.queue.peek().is_some_and(|s| s.due <= self.now) {
            let s = self.queue.pop().expect("peeked");
            if s.doomed || !self.nodes.contains(&s.env.to) {
                self.counters.dropped += 1;
                self.dropped.push(s.env);
            } else {
                self.inboxes.entry(s.env.to).or_default().push(s.env);
                delivered += 1;
            }
        }
        self.counters.messages += delivered as u64;
        delivered
    }

    fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    fn nodes_with_mail_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.inboxes.keys().copied());
    }

    fn drain_inbox_into(&mut self, v: NodeId, out: &mut Vec<Envelope<M>>) {
        out.clear();
        if let Some(mut inbox) = self.inboxes.remove(&v) {
            out.append(&mut inbox);
        }
    }

    fn drain_dropped_into(&mut self, out: &mut Vec<Envelope<M>>) {
        out.clear();
        out.append(&mut self.dropped);
    }

    fn counters(&self) -> Counters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyncNetwork;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn mesh<M>(config: AsyncConfig, k: u64) -> AsyncNetwork<M> {
        let mut net = AsyncNetwork::new(config);
        for i in 0..k {
            net.add_node(n(i));
        }
        net
    }

    /// Drives an engine until quiet, returning `(rounds, deliveries)` where
    /// deliveries is the flattened `(to, payload)` stream in arrival order.
    fn drain_all<E: NetworkEngine<u32>>(net: &mut E) -> Vec<(NodeId, u32)> {
        let mut out = Vec::new();
        let mut with_mail = Vec::new();
        let mut mail = Vec::new();
        while net.has_pending() {
            net.step();
            net.nodes_with_mail_into(&mut with_mail);
            for &v in &with_mail {
                net.drain_inbox_into(v, &mut mail);
                for env in mail.drain(..) {
                    out.push((v, env.payload));
                }
            }
        }
        out
    }

    #[test]
    fn zero_latency_matches_sync_delivery() {
        let mut sync: SyncNetwork<u32> = SyncNetwork::new();
        let mut anet = mesh(AsyncConfig::zero_latency(), 4);
        for i in 0..4 {
            NetworkEngine::add_node(&mut sync, n(i));
        }
        for (from, to, p) in [(0, 1, 10), (2, 3, 20), (1, 0, 30)] {
            NetworkEngine::send(&mut sync, n(from), n(to), p);
            anet.send(n(from), n(to), p);
        }
        assert_eq!(drain_all(&mut sync), drain_all(&mut anet));
        assert_eq!(sync.counters().rounds, anet.counters().rounds);
        assert_eq!(sync.counters().messages, anet.counters().messages);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut net = mesh(AsyncConfig::uniform(1, 5, 7).with_jitter(2), 6);
            for i in 0..30u32 {
                net.send(n(u64::from(i) % 6), n(u64::from(i + 1) % 6), i);
            }
            drain_all(&mut net)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn latency_reorders_messages_across_links() {
        // With heterogeneous link latencies, some pair of messages sent in
        // one order arrives in the other order.
        let mut net = mesh(AsyncConfig::uniform(1, 6, 3), 8);
        for i in 0..8u32 {
            net.send(n(0), n(1 + u64::from(i) % 7), i);
        }
        let arrivals = drain_all(&mut net);
        assert_eq!(arrivals.len(), 8, "everything still arrives");
        let payload_order: Vec<u32> = arrivals.iter().map(|&(_, p)| p).collect();
        let mut sorted = payload_order.clone();
        sorted.sort_unstable();
        assert_ne!(payload_order, sorted, "send order survived — no reordering");
    }

    #[test]
    fn same_link_fifo_without_jitter() {
        // A fixed per-link latency cannot reorder same-link traffic.
        let mut net = mesh(AsyncConfig::uniform(1, 6, 11), 2);
        for i in 0..10u32 {
            net.send(n(0), n(1), i);
        }
        let arrivals = drain_all(&mut net);
        let payloads: Vec<u32> = arrivals.iter().map(|&(_, p)| p).collect();
        assert_eq!(payloads, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_faults_lose_messages_observably() {
        let mut net = mesh(AsyncConfig::uniform(1, 2, 9).with_drop_prob(0.5), 4);
        for i in 0..40u32 {
            net.send(n(0), n(1 + u64::from(i) % 3), i);
        }
        let arrivals = drain_all(&mut net);
        let c = net.counters();
        assert_eq!(arrivals.len() as u64, c.messages);
        assert!(c.dropped > 0, "p=0.5 over 40 messages");
        assert_eq!(c.messages + c.dropped, 40);
        let mut lost = Vec::new();
        net.drain_dropped_into(&mut lost);
        assert_eq!(lost.len() as u64, c.dropped);
    }

    #[test]
    fn dead_recipient_drops_at_delivery_time() {
        let mut net = mesh(AsyncConfig::uniform(3, 3, 1), 3);
        net.send(n(0), n(2), 5);
        net.step();
        net.remove_node(n(2)); // dies while the message is in flight
        net.step();
        net.step();
        assert_eq!(net.counters().dropped, 1);
        assert_eq!(net.counters().messages, 0);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_sender_panics() {
        let mut net: AsyncNetwork<u32> = mesh(AsyncConfig::zero_latency(), 1);
        net.send(n(9), n(0), 1);
    }

    #[test]
    fn link_latencies_are_stable_and_bounded() {
        let cfg = AsyncConfig::uniform(2, 7, 123);
        for a in 0..10 {
            for b in 0..10 {
                let l = cfg.link_latency(n(a), n(b));
                assert!((2..=7).contains(&l));
                assert_eq!(l, cfg.link_latency(n(a), n(b)), "latency is per-link");
            }
        }
    }
}
