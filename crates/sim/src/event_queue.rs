//! The asynchronous engine: a deterministic event queue with per-link
//! latency, message reordering, and optional drop faults.
//!
//! # Scheduling: calendar wheel, not a heap
//!
//! Delivery used to go through a `BinaryHeap<Scheduled>` — an O(log m)
//! sift per send and per pop at m in-flight messages. The heap is gone:
//! deliveries are filed in a **calendar wheel**, a power-of-two ring of
//! per-tick buckets indexed by `due & mask`. Scheduling is an O(1) push;
//! a step drains exactly one bucket. Delays beyond the wheel's horizon
//! (possible only when the configured worst case exceeds [`MAX_WHEEL`])
//! overflow into a far-future `BTreeMap` keyed by due tick, drained as
//! their tick arrives.
//!
//! ## Why delivery order is bit-identical to the heap
//!
//! The heap popped by `(due, seq)` where `seq` was a global send counter.
//! The wheel reproduces that order structurally, so no per-message
//! sequence number is stored at all:
//!
//! - **one due tick per bucket**: every delay satisfies
//!   `1 ≤ delay < horizon`, so at any moment a bucket holds messages for
//!   exactly one future tick — two undelivered messages in the same
//!   bucket would have to differ in due tick by a multiple of `horizon`,
//!   which the delay bound excludes;
//! - **push order is seq order**: within one due tick, messages are
//!   appended to the bucket in send order;
//! - **far-future entries precede the bucket**: an overflow message due
//!   at tick `T` was sent at or before `T − horizon`, while every wheel
//!   message due at `T` was sent strictly after `T − horizon` — so
//!   draining the far map before the bucket is exactly `(due, seq)`
//!   order, and within the far map's per-tick vector push order is again
//!   seq order.
//!
//! The old heap engine survives behind `#[cfg(test)]` as
//! [`heap_oracle::HeapNetwork`]; property tests in this module drive both
//! schedulers through identical seeded traffic (latency spreads, jitter,
//! drop faults, mid-flight node removals) and assert bit-identical
//! arrival streams and counters.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xheal_graph::NodeId;
use xheal_trace::{hook, Layer, SharedTracer};

use crate::engine::{Counters, Envelope, NetworkEngine};
use crate::mailbox::Mailboxes;

/// Upper bound on the calendar wheel's bucket count. Worst-case delays
/// beyond this spill into the far-future overflow map — rare traffic pays
/// the `BTreeMap` tax so common traffic stays O(1).
const MAX_WHEEL: u64 = 1024;

/// Delivery model of an [`AsyncNetwork`]: per-link base latency, per-message
/// jitter, and an optional fault rate — all driven by one seed, so every run
/// is reproducible.
///
/// Each directed link `(from, to)` gets a fixed base latency drawn from
/// `[min_latency, max_latency]` by hashing the endpoints with the seed;
/// every message additionally draws jitter from `[0, jitter]` off the
/// engine's RNG. Messages on slow links overtake nothing; messages on fast
/// links overtake in-flight traffic sent earlier — genuine reordering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsyncConfig {
    /// Smallest per-link base latency, in rounds (≥ 1: nothing is delivered
    /// in its send round, matching the LOCAL model).
    pub min_latency: u64,
    /// Largest per-link base latency, in rounds.
    pub max_latency: u64,
    /// Extra uniform per-message delay in `[0, jitter]` rounds.
    pub jitter: u64,
    /// Probability a message is silently lost in flight (a drop fault),
    /// decided at send time from the seeded RNG. Lost messages surface in
    /// [`Counters::dropped`] and [`NetworkEngine::drain_dropped_into`] when
    /// their delivery round arrives.
    pub drop_prob: f64,
    /// Seed of the engine's randomness (link latencies, jitter, faults).
    pub seed: u64,
}

impl AsyncConfig {
    /// The degenerate model equal to [`crate::SyncNetwork`]'s delivery: every
    /// message arrives exactly one round after it was sent, nothing is lost,
    /// and the RNG is never consumed. The cross-validation suite runs the
    /// actor protocol over this configuration and asserts bit-identical
    /// topologies with the synchronous engine.
    pub fn zero_latency() -> Self {
        AsyncConfig {
            min_latency: 1,
            max_latency: 1,
            jitter: 0,
            drop_prob: 0.0,
            seed: 0,
        }
    }

    /// Uniform per-link base latencies in `[min, max]` rounds, no jitter, no
    /// faults.
    ///
    /// # Panics
    ///
    /// Panics if `min` is 0 or `min > max`.
    pub fn uniform(min: u64, max: u64, seed: u64) -> Self {
        assert!(min >= 1, "latency below one round breaks the LOCAL model");
        assert!(min <= max, "empty latency range");
        AsyncConfig {
            min_latency: min,
            max_latency: max,
            jitter: 0,
            drop_prob: 0.0,
            seed,
        }
    }

    /// Adds per-message jitter of up to `jitter` rounds.
    pub fn with_jitter(mut self, jitter: u64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Adds drop faults with the given per-message probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability out of range");
        self.drop_prob = p;
        self
    }

    /// The worst-case delivery delay of any single message under this model.
    pub fn worst_case_delay(&self) -> u64 {
        self.max_latency + self.jitter
    }

    /// Fixed base latency of the directed link `from → to`.
    fn link_latency(&self, from: NodeId, to: NodeId) -> u64 {
        if self.min_latency == self.max_latency {
            return self.min_latency;
        }
        let span = self.max_latency - self.min_latency + 1;
        self.min_latency + mix3(self.seed, from.as_u64(), to.as_u64()) % span
    }
}

/// SplitMix64-style avalanche of three words — the per-link latency hash.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(c);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One scheduled delivery in a wheel bucket or far-future batch. Its due
/// tick is implied by where it is filed, and its position in the vector is
/// its send order — no per-message bookkeeping survives (see the module
/// docs for why that still reproduces the heap's `(due, seq)` order).
#[derive(Clone, Debug)]
struct InFlight<M> {
    /// A drop fault already claimed this message; at its due tick it goes
    /// to the dropped log instead of an inbox.
    doomed: bool,
    env: Envelope<M>,
}

/// The asynchronous event-queue engine.
///
/// Rounds still exist (recovery time stays measurable in the paper's unit)
/// but messages take a per-link number of rounds to arrive, can overtake
/// each other, and can be lost to seeded drop faults. With
/// [`AsyncConfig::zero_latency`] it is observationally equivalent to
/// [`crate::SyncNetwork`].
///
/// Scheduling is a calendar wheel (O(1) per send, one bucket drain per
/// step) and membership/inboxes live in the shared flat mailbox arena —
/// steady-state stepping allocates nothing. See the module docs for the
/// structure and the delivery-order argument.
///
/// # Examples
///
/// ```
/// use xheal_graph::NodeId;
/// use xheal_sim::{AsyncConfig, AsyncNetwork, NetworkEngine};
///
/// let mut net: AsyncNetwork<&'static str> =
///     AsyncNetwork::new(AsyncConfig::uniform(1, 3, 42));
/// let (a, b) = (NodeId::new(1), NodeId::new(2));
/// net.add_node(a);
/// net.add_node(b);
/// net.send(a, b, "ping");
/// let mut inbox = Vec::new();
/// while net.has_pending() {
///     net.step();
/// }
/// net.drain_inbox_into(b, &mut inbox);
/// assert_eq!(inbox[0].payload, "ping");
/// assert!(net.counters().rounds >= 1 && net.counters().rounds <= 3);
/// ```
#[derive(Clone, Debug)]
pub struct AsyncNetwork<M> {
    mail: Mailboxes<M>,
    /// The calendar wheel: `wheel.len()` is a power of two (the horizon),
    /// bucket `due & mask` holds the deliveries for tick `due`.
    wheel: Vec<Vec<InFlight<M>>>,
    mask: u64,
    /// Far-future overflow for delays at or beyond the horizon, keyed by
    /// due tick. Empty unless the configured worst case exceeds
    /// [`MAX_WHEEL`].
    far: BTreeMap<u64, Vec<InFlight<M>>>,
    /// Recycled far-future batch buffers.
    far_pool: Vec<Vec<InFlight<M>>>,
    /// Messages currently in flight (wheel + far map).
    pending: usize,
    now: u64,
    rng: StdRng,
    config: AsyncConfig,
    /// Optional transport-span recorder; `None` keeps stepping branch-only.
    tracer: Option<SharedTracer>,
}

impl<M> AsyncNetwork<M> {
    /// Creates an empty network with the given delivery model.
    ///
    /// # Panics
    ///
    /// Panics if `config.min_latency` is 0: same-round delivery breaks the
    /// LOCAL model, and the wheel files a zero-delay message into the
    /// bucket that was already drained this tick.
    pub fn new(config: AsyncConfig) -> Self {
        assert!(
            config.min_latency >= 1,
            "latency below one round breaks the LOCAL model"
        );
        // Strictly larger than the worst delay so every in-wheel delay is
        // `< horizon` — the single-due-tick-per-bucket invariant.
        let horizon = config
            .worst_case_delay()
            .saturating_add(1)
            .next_power_of_two()
            .min(MAX_WHEEL);
        AsyncNetwork {
            mail: Mailboxes::new(),
            wheel: (0..horizon).map(|_| Vec::new()).collect(),
            mask: horizon - 1,
            far: BTreeMap::new(),
            far_pool: Vec::new(),
            pending: 0,
            now: 0,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            tracer: None,
        }
    }

    /// The delivery model in force.
    pub fn config(&self) -> &AsyncConfig {
        &self.config
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending
    }
}

impl<M> Default for AsyncNetwork<M> {
    fn default() -> Self {
        AsyncNetwork::new(AsyncConfig::zero_latency())
    }
}

impl<M> NetworkEngine<M> for AsyncNetwork<M> {
    fn add_node(&mut self, v: NodeId) {
        self.mail.add(v);
    }

    fn remove_node(&mut self, v: NodeId) {
        self.mail.remove(v);
    }

    fn contains(&self, v: NodeId) -> bool {
        self.mail.contains(v)
    }

    fn len(&self) -> usize {
        self.mail.len()
    }

    fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        assert!(self.mail.contains(from), "sender {from} not registered");
        let mut delay = self.config.link_latency(from, to);
        if self.config.jitter > 0 {
            delay += self.rng.random_range(0..=self.config.jitter);
        }
        let doomed = self.config.drop_prob > 0.0 && self.rng.random_bool(self.config.drop_prob);
        self.mail.tally(&payload);
        let due = self.now + delay;
        let rec = InFlight {
            doomed,
            env: Envelope { from, to, payload },
        };
        let horizon = self.wheel.len() as u64;
        if delay < horizon {
            self.wheel[(due & self.mask) as usize].push(rec);
        } else {
            self.far
                .entry(due)
                .or_insert_with(|| self.far_pool.pop().unwrap_or_default())
                .push(rec);
        }
        self.pending += 1;
    }

    fn step(&mut self) -> usize {
        self.now += 1;
        self.mail.count_round();
        let mut delivered = 0;
        // Far-future arrivals first: anything filed in the overflow map for
        // this tick was sent at least a horizon before everything in the
        // wheel bucket, so it strictly precedes the bucket in send order.
        while self
            .far
            .first_key_value()
            .is_some_and(|(&due, _)| due <= self.now)
        {
            let (_, mut batch) = self.far.pop_first().expect("peeked");
            self.pending -= batch.len();
            for rec in batch.drain(..) {
                if self.mail.deliver(rec.env, rec.doomed) {
                    delivered += 1;
                }
            }
            self.far_pool.push(batch);
        }
        let slot = (self.now & self.mask) as usize;
        let mut bucket = std::mem::take(&mut self.wheel[slot]);
        self.pending -= bucket.len();
        for rec in bucket.drain(..) {
            if self.mail.deliver(rec.env, rec.doomed) {
                delivered += 1;
            }
        }
        // The drained (still-warm) buffer goes back into its slot.
        self.wheel[slot] = bucket;
        self.mail.count_delivered(delivered);
        if delivered > 0 {
            hook::instant(
                &self.tracer,
                Layer::Transport,
                "net.step",
                0,
                delivered as u64,
            );
        }
        delivered
    }

    fn has_pending(&self) -> bool {
        self.pending > 0
    }

    fn nodes_with_mail_into(&self, out: &mut Vec<NodeId>) {
        self.mail.nodes_with_mail_into(out);
    }

    fn drain_inbox_into(&mut self, v: NodeId, out: &mut Vec<Envelope<M>>) {
        self.mail.drain_inbox_into(v, out);
    }

    fn drain_dropped_into(&mut self, out: &mut Vec<Envelope<M>>) {
        self.mail.drain_dropped_into(out);
    }

    fn counters(&self) -> Counters {
        self.mail.counters()
    }

    fn set_classifier(&mut self, labels: &'static [&'static str], classify: fn(&M) -> usize) {
        self.mail.set_classifier(labels, classify);
    }

    fn kind_counts(&self) -> (&'static [&'static str], &[u64]) {
        self.mail.kind_counts()
    }

    fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        self.tracer = tracer;
    }
}

/// The pre-calendar-queue scheduler, kept verbatim as a test oracle: a
/// `BinaryHeap` ordered by `(due, seq)` over `BTreeMap` inboxes. The
/// property tests below drive it and [`AsyncNetwork`] through identical
/// seeded traffic and assert bit-identical arrival streams.
#[cfg(test)]
mod heap_oracle {
    use std::cmp::Ordering;
    use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use xheal_graph::NodeId;

    use crate::engine::{Counters, Envelope, NetworkEngine};

    use super::AsyncConfig;

    #[derive(Clone, Debug)]
    struct Scheduled<M> {
        due: u64,
        seq: u64,
        doomed: bool,
        env: Envelope<M>,
    }

    impl<M> PartialEq for Scheduled<M> {
        fn eq(&self, other: &Self) -> bool {
            (self.due, self.seq) == (other.due, other.seq)
        }
    }

    impl<M> Eq for Scheduled<M> {}

    impl<M> PartialOrd for Scheduled<M> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<M> Ord for Scheduled<M> {
        /// Reversed so the max-heap pops the *earliest* delivery.
        fn cmp(&self, other: &Self) -> Ordering {
            (other.due, other.seq).cmp(&(self.due, self.seq))
        }
    }

    /// The old heap-scheduled engine (see the module docs).
    pub(crate) struct HeapNetwork<M> {
        nodes: BTreeSet<NodeId>,
        queue: BinaryHeap<Scheduled<M>>,
        inboxes: BTreeMap<NodeId, Vec<Envelope<M>>>,
        dropped: Vec<Envelope<M>>,
        now: u64,
        seq: u64,
        rng: StdRng,
        config: AsyncConfig,
        counters: Counters,
    }

    impl<M> HeapNetwork<M> {
        pub(crate) fn new(config: AsyncConfig) -> Self {
            HeapNetwork {
                nodes: BTreeSet::new(),
                queue: BinaryHeap::new(),
                inboxes: BTreeMap::new(),
                dropped: Vec::new(),
                now: 0,
                seq: 0,
                rng: StdRng::seed_from_u64(config.seed),
                config,
                counters: Counters::default(),
            }
        }
    }

    impl<M> NetworkEngine<M> for HeapNetwork<M> {
        fn add_node(&mut self, v: NodeId) {
            self.nodes.insert(v);
        }

        fn remove_node(&mut self, v: NodeId) {
            self.nodes.remove(&v);
            self.inboxes.remove(&v);
        }

        fn contains(&self, v: NodeId) -> bool {
            self.nodes.contains(&v)
        }

        fn len(&self) -> usize {
            self.nodes.len()
        }

        fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
            assert!(self.nodes.contains(&from), "sender {from} not registered");
            let mut delay = self.config.link_latency(from, to);
            if self.config.jitter > 0 {
                delay += self.rng.random_range(0..=self.config.jitter);
            }
            let doomed = self.config.drop_prob > 0.0 && self.rng.random_bool(self.config.drop_prob);
            self.seq += 1;
            self.queue.push(Scheduled {
                due: self.now + delay,
                seq: self.seq,
                doomed,
                env: Envelope { from, to, payload },
            });
        }

        fn step(&mut self) -> usize {
            self.now += 1;
            self.counters.rounds += 1;
            let mut delivered = 0;
            while self.queue.peek().is_some_and(|s| s.due <= self.now) {
                let s = self.queue.pop().expect("peeked");
                if s.doomed || !self.nodes.contains(&s.env.to) {
                    self.counters.dropped += 1;
                    self.dropped.push(s.env);
                } else {
                    self.inboxes.entry(s.env.to).or_default().push(s.env);
                    delivered += 1;
                }
            }
            self.counters.messages += delivered as u64;
            delivered
        }

        fn has_pending(&self) -> bool {
            !self.queue.is_empty()
        }

        fn nodes_with_mail_into(&self, out: &mut Vec<NodeId>) {
            out.clear();
            out.extend(self.inboxes.keys().copied());
        }

        fn drain_inbox_into(&mut self, v: NodeId, out: &mut Vec<Envelope<M>>) {
            out.clear();
            if let Some(mut inbox) = self.inboxes.remove(&v) {
                out.append(&mut inbox);
            }
        }

        fn drain_dropped_into(&mut self, out: &mut Vec<Envelope<M>>) {
            out.clear();
            out.append(&mut self.dropped);
        }

        fn counters(&self) -> Counters {
            self.counters
        }
    }
}

#[cfg(test)]
mod tests {
    use super::heap_oracle::HeapNetwork;
    use super::*;
    use crate::SyncNetwork;
    use proptest::prelude::*;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn mesh<M>(config: AsyncConfig, k: u64) -> AsyncNetwork<M> {
        let mut net = AsyncNetwork::new(config);
        for i in 0..k {
            net.add_node(n(i));
        }
        net
    }

    /// Drives an engine until quiet, returning the flattened
    /// `(to, payload)` stream in arrival order.
    fn drain_all<E: NetworkEngine<u32>>(net: &mut E) -> Vec<(NodeId, u32)> {
        let mut out = Vec::new();
        let mut with_mail = Vec::new();
        let mut mail = Vec::new();
        while net.has_pending() {
            net.step();
            net.nodes_with_mail_into(&mut with_mail);
            for &v in &with_mail {
                net.drain_inbox_into(v, &mut mail);
                for env in mail.drain(..) {
                    out.push((v, env.payload));
                }
            }
        }
        out
    }

    #[test]
    fn zero_latency_matches_sync_delivery() {
        let mut sync: SyncNetwork<u32> = SyncNetwork::new();
        let mut anet = mesh(AsyncConfig::zero_latency(), 4);
        for i in 0..4 {
            NetworkEngine::add_node(&mut sync, n(i));
        }
        for (from, to, p) in [(0, 1, 10), (2, 3, 20), (1, 0, 30)] {
            NetworkEngine::send(&mut sync, n(from), n(to), p);
            anet.send(n(from), n(to), p);
        }
        assert_eq!(drain_all(&mut sync), drain_all(&mut anet));
        assert_eq!(sync.counters().rounds, anet.counters().rounds);
        assert_eq!(sync.counters().messages, anet.counters().messages);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut net = mesh(AsyncConfig::uniform(1, 5, 7).with_jitter(2), 6);
            for i in 0..30u32 {
                net.send(n(u64::from(i) % 6), n(u64::from(i + 1) % 6), i);
            }
            drain_all(&mut net)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn latency_reorders_messages_across_links() {
        // With heterogeneous link latencies, some pair of messages sent in
        // one order arrives in the other order.
        let mut net = mesh(AsyncConfig::uniform(1, 6, 3), 8);
        for i in 0..8u32 {
            net.send(n(0), n(1 + u64::from(i) % 7), i);
        }
        let arrivals = drain_all(&mut net);
        assert_eq!(arrivals.len(), 8, "everything still arrives");
        let payload_order: Vec<u32> = arrivals.iter().map(|&(_, p)| p).collect();
        let mut sorted = payload_order.clone();
        sorted.sort_unstable();
        assert_ne!(payload_order, sorted, "send order survived — no reordering");
    }

    #[test]
    fn same_link_fifo_without_jitter() {
        // A fixed per-link latency cannot reorder same-link traffic.
        let mut net = mesh(AsyncConfig::uniform(1, 6, 11), 2);
        for i in 0..10u32 {
            net.send(n(0), n(1), i);
        }
        let arrivals = drain_all(&mut net);
        let payloads: Vec<u32> = arrivals.iter().map(|&(_, p)| p).collect();
        assert_eq!(payloads, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_faults_lose_messages_observably() {
        let mut net = mesh(AsyncConfig::uniform(1, 2, 9).with_drop_prob(0.5), 4);
        for i in 0..40u32 {
            net.send(n(0), n(1 + u64::from(i) % 3), i);
        }
        let arrivals = drain_all(&mut net);
        let c = net.counters();
        assert_eq!(arrivals.len() as u64, c.messages);
        assert!(c.dropped > 0, "p=0.5 over 40 messages");
        assert_eq!(c.messages + c.dropped, 40);
        let mut lost = Vec::new();
        net.drain_dropped_into(&mut lost);
        assert_eq!(lost.len() as u64, c.dropped);
    }

    #[test]
    fn dead_recipient_drops_at_delivery_time() {
        let mut net = mesh(AsyncConfig::uniform(3, 3, 1), 3);
        net.send(n(0), n(2), 5);
        net.step();
        net.remove_node(n(2)); // dies while the message is in flight
        net.step();
        net.step();
        assert_eq!(net.counters().dropped, 1);
        assert_eq!(net.counters().messages, 0);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_sender_panics() {
        let mut net: AsyncNetwork<u32> = mesh(AsyncConfig::zero_latency(), 1);
        net.send(n(9), n(0), 1);
    }

    #[test]
    #[should_panic(expected = "LOCAL model")]
    fn zero_min_latency_is_rejected() {
        let _ = AsyncNetwork::<u32>::new(AsyncConfig {
            min_latency: 0,
            max_latency: 1,
            jitter: 0,
            drop_prob: 0.0,
            seed: 0,
        });
    }

    #[test]
    fn link_latencies_are_stable_and_bounded() {
        let cfg = AsyncConfig::uniform(2, 7, 123);
        for a in 0..10 {
            for b in 0..10 {
                let l = cfg.link_latency(n(a), n(b));
                assert!((2..=7).contains(&l));
                assert_eq!(l, cfg.link_latency(n(a), n(b)), "latency is per-link");
            }
        }
    }

    #[test]
    fn in_flight_tracks_wheel_and_overflow() {
        // Worst-case delay far beyond MAX_WHEEL forces the far-future map.
        let mut net = mesh(AsyncConfig::uniform(1, 3000, 5), 4);
        for i in 0..20u32 {
            net.send(n(u64::from(i) % 4), n(u64::from(i + 1) % 4), i);
        }
        assert_eq!(net.in_flight(), 20);
        let arrivals = drain_all(&mut net);
        assert_eq!(arrivals.len(), 20);
        assert_eq!(net.in_flight(), 0);
        assert!(!net.has_pending());
    }

    /// Drives the calendar engine and the heap oracle through one
    /// identical seeded workload — interleaved sends, steps, and
    /// mid-flight removals — and asserts bit-identical arrival streams,
    /// drop logs, and counters.
    fn assert_matches_oracle(config: AsyncConfig, k: u64, ops: usize, script_seed: u64) {
        let mut new_net: AsyncNetwork<u32> = AsyncNetwork::new(config);
        let mut oracle: HeapNetwork<u32> = HeapNetwork::new(config);
        let mut live: Vec<u64> = (0..k).collect();
        for &i in &live {
            new_net.add_node(n(i));
            oracle.add_node(n(i));
        }
        let mut script = StdRng::seed_from_u64(script_seed);
        let mut payload = 0u32;
        for _ in 0..ops {
            match script.random_range(0u32..10) {
                // Mostly sends: both engines consume their own (identically
                // seeded) config RNG in the same order.
                0..=6 => {
                    let from = live[script.random_range(0..live.len())];
                    let to = script.random_range(0..k);
                    payload += 1;
                    new_net.send(n(from), n(to), payload);
                    NetworkEngine::send(&mut oracle, n(from), n(to), payload);
                }
                7 | 8 => {
                    new_net.step();
                    oracle.step();
                }
                // Membership churn: remove one node mid-flight (dropping
                // its traffic) and register a fresh id.
                _ => {
                    if live.len() > 1 {
                        let gone = live.swap_remove(script.random_range(0..live.len()));
                        new_net.remove_node(n(gone));
                        oracle.remove_node(n(gone));
                    }
                    let fresh = script.random_range(k..2 * k);
                    if !live.contains(&fresh) {
                        live.push(fresh);
                    }
                    new_net.add_node(n(fresh));
                    oracle.add_node(n(fresh));
                }
            }
        }
        assert_eq!(drain_all(&mut new_net), drain_all(&mut oracle));
        let mut lost_new = Vec::new();
        let mut lost_old = Vec::new();
        new_net.drain_dropped_into(&mut lost_new);
        oracle.drain_dropped_into(&mut lost_old);
        assert_eq!(lost_new, lost_old);
        assert_eq!(new_net.counters(), oracle.counters());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn calendar_queue_matches_heap_oracle(
            seed in any::<u64>(),
            min in 1u64..4,
            span in 0u64..8,
            jitter in 0u64..4,
            drop_centi in 0u64..50,
            k in 2u64..10,
            ops in 20usize..200,
            script_seed in any::<u64>(),
        ) {
            let config = AsyncConfig::uniform(min, min + span, seed)
                .with_jitter(jitter)
                .with_drop_prob(drop_centi as f64 / 100.0);
            assert_matches_oracle(config, k, ops, script_seed);
        }

        #[test]
        fn far_future_overflow_matches_heap_oracle(
            seed in any::<u64>(),
            base in 1_100u64..2_500,
            jitter in 0u64..200,
            k in 2u64..6,
            ops in 10usize..60,
            script_seed in any::<u64>(),
        ) {
            // Worst-case delay beyond MAX_WHEEL: most traffic lands in the
            // far-future overflow map, some in the wheel — the merge order
            // between the two must still reproduce (due, seq).
            let config = AsyncConfig::uniform(1, base, seed).with_jitter(jitter);
            assert_matches_oracle(config, k, ops, script_seed);
        }

        #[test]
        fn zero_latency_matches_oracle_under_churn(
            k in 2u64..12,
            ops in 20usize..200,
            script_seed in any::<u64>(),
        ) {
            assert_matches_oracle(AsyncConfig::zero_latency(), k, ops, script_seed);
        }
    }
}
