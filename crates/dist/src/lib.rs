//! # xheal-dist
//!
//! The distributed Xheal of the paper's Section 5: the same healing
//! decisions as the centralized implementation — literally the same
//! [`RepairPlanner`] — executed as a message-passing protocol over the
//! LOCAL-model engine [`xheal_sim::SyncNetwork`]. The design follows the
//! fully-distributed direction of *DEX: Self-healing Expanders*
//! (Pandurangan, Robinson & Trehan): healing logic is fixed, only the
//! execution substrate changes.
//!
//! Each deletion repair runs in phases over the synchronous network:
//!
//! 1. **Probe** — the coordinator (the least-id affected node) contacts
//!    every participant of the repair plan;
//! 2. **Grant** — participants return their local cloud state;
//! 3. **Link** — the coordinator disseminates edge install/strip
//!    instructions to both endpoints of every planned edge;
//! 4. **Splice** — cloud construction finishes with ⌈log₂ m⌉ gossip waves
//!    for the largest cloud of m members being built (the distributed
//!    Hamilton-cycle splice).
//!
//! Rounds are therefore O(log n) per deletion and messages O(κ·deg(v))
//! amortized — Theorem 5's budgets, measured for real by [`DistXheal::costs`]
//! and checked by experiments E5/E7.
//!
//! Because the planner consumes the healer's seeded randomness identically
//! in both executors, [`DistXheal`] and [`xheal_core::Xheal`] produce
//! bit-identical topologies on identical schedules — the cross-validation
//! suite asserts exactly that.
//!
//! # Examples
//!
//! ```
//! use xheal_core::XhealConfig;
//! use xheal_dist::DistXheal;
//! use xheal_graph::{components, generators, NodeId};
//!
//! let mut net = DistXheal::new(&generators::star(10), XhealConfig::new(4));
//! net.delete(NodeId::new(0))?; // adversary kills the hub
//! assert!(components::is_connected(net.graph()));
//! let cost = &net.costs()[0];
//! assert!(cost.rounds > 0 && cost.messages > 0);
//! # Ok::<(), xheal_core::HealError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod messages;

use std::collections::BTreeSet;

use xheal_core::{
    DeletionReport, HealError, Healer, PlanAction, RepairPlan, RepairPlanner, XhealConfig,
};
use xheal_graph::{EdgeLabels, Graph, NodeId};
use xheal_sim::{Counters, SyncNetwork};

pub use messages::{Msg, RepairCost};

/// The distributed Xheal network: the live graph, the shared repair
/// planner, and the LOCAL-model message engine executing every plan.
#[derive(Clone, Debug)]
pub struct DistXheal {
    graph: Graph,
    planner: RepairPlanner,
    network: SyncNetwork<Msg>,
    costs: Vec<RepairCost>,
    /// Sequence number tagging each repair's probe/grant exchange.
    repair_seq: u64,
    /// Reusable incident-edge buffer for the deletion hot loop.
    scratch_incident: Vec<(NodeId, EdgeLabels)>,
    /// Reusable sorted buffer holding the pre-repair free-node snapshot.
    scratch_free: Vec<NodeId>,
}

impl DistXheal {
    /// Wraps an initial network: every node becomes a processor of the
    /// message engine; all existing edges are black, per the model.
    pub fn new(initial: &Graph, config: XhealConfig) -> Self {
        let mut network = SyncNetwork::new();
        for v in initial.nodes() {
            network.add_node(v);
        }
        DistXheal {
            graph: initial.clone(),
            planner: RepairPlanner::new(initial.nodes(), config),
            network,
            costs: Vec::new(),
            repair_seq: 0,
            scratch_incident: Vec::new(),
            scratch_free: Vec::new(),
        }
    }

    /// The current (healed) network graph `G_t`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared decision engine — identical state to a centralized
    /// [`xheal_core::Xheal`] replaying the same schedule with the same seed.
    pub fn planner(&self) -> &RepairPlanner {
        &self.planner
    }

    /// Per-deletion protocol costs, in deletion order.
    pub fn costs(&self) -> &[RepairCost] {
        &self.costs
    }

    /// Engine-level totals (rounds, messages, drops) across the whole run.
    pub fn counters(&self) -> Counters {
        self.network.counters()
    }

    /// Adversarial insertion of `v` with black edges to `neighbors`.
    /// No healing action and no messages (Algorithm 3.1 lines 1–2) — the
    /// new processor is just registered.
    ///
    /// # Errors
    ///
    /// [`HealError::NodeExists`] if `v` is present;
    /// [`HealError::NeighborMissing`] if any neighbor is absent.
    pub fn insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError> {
        if self.graph.contains_node(v) {
            return Err(HealError::NodeExists(v));
        }
        for &u in neighbors {
            if !self.graph.contains_node(u) {
                return Err(HealError::NeighborMissing(u));
            }
        }
        self.graph.add_node(v).expect("checked fresh");
        for &u in neighbors {
            if u != v {
                let _ = self.graph.add_black_edge(v, u);
            }
        }
        self.planner.note_insert(v);
        self.network.add_node(v);
        Ok(())
    }

    /// Adversarial deletion of `v`, healed by running the repair plan as a
    /// probe/grant/link/splice protocol over the synchronous network.
    ///
    /// # Errors
    ///
    /// [`HealError::NodeMissing`] if `v` is not in the network.
    pub fn delete(&mut self, v: NodeId) -> Result<DeletionReport, HealError> {
        self.delete_inner(v, None)
    }

    /// Like [`DistXheal::delete`], but the adversary additionally kills
    /// `casualty` *mid-protocol* (right after the probe wave), so every
    /// later message addressed to it is dropped by the engine — visible in
    /// [`DistXheal::counters`]'s `dropped` — and the casualty itself is
    /// healed immediately afterwards. Fault-injection surface for testing
    /// protocol robustness.
    ///
    /// # Errors
    ///
    /// [`HealError::NodeMissing`] if either node is absent (`casualty` must
    /// also differ from `v`).
    pub fn delete_with_mid_protocol_failure(
        &mut self,
        v: NodeId,
        casualty: NodeId,
    ) -> Result<(DeletionReport, DeletionReport), HealError> {
        if casualty == v || !self.graph.contains_node(casualty) {
            return Err(HealError::NodeMissing(casualty));
        }
        let first = self.delete_inner(v, Some(casualty))?;
        let second = self.delete_inner(casualty, None)?;
        Ok((first, second))
    }

    fn delete_inner(
        &mut self,
        v: NodeId,
        mid_protocol_casualty: Option<NodeId>,
    ) -> Result<DeletionReport, HealError> {
        if !self.graph.contains_node(v) {
            return Err(HealError::NodeMissing(v));
        }
        let degree = self.graph.degree(v).expect("checked present");
        let mut incident = std::mem::take(&mut self.scratch_incident);
        incident.clear();
        self.graph
            .remove_node_into(v, &mut incident)
            .expect("checked present");
        self.network.remove_node(v);

        // Pre-repair bridge-duty snapshot: the grant messages must carry
        // the state the decisions were *made* from, and plan_deletion
        // advances the planner past it. `nodes()` is ascending, so the
        // reused buffer stays sorted for binary-search membership tests.
        let mut free_before = std::mem::take(&mut self.scratch_free);
        free_before.clear();
        free_before.extend(
            self.graph
                .nodes()
                .filter(|&u| self.planner.node_state(u).is_none_or(|st| st.is_free())),
        );

        let before = self.network.counters();
        let plan = self.planner.plan_deletion(v, &incident, degree);
        self.execute_protocol(&plan, v, &free_before, mid_protocol_casualty);
        plan.apply_to(&mut self.graph);
        self.scratch_incident = incident;
        self.scratch_free = free_before;
        let spent = self.network.counters().since(before);

        self.costs.push(RepairCost {
            rounds: spent.rounds,
            messages: spent.messages,
            black_degree: plan.report.black_degree,
            degree,
            case: plan.case(),
            combined: plan.report.combined,
        });
        Ok(plan.report)
    }

    /// Runs the plan's message protocol. The graph is untouched here — the
    /// engine only accounts rounds/messages (and drops, when nodes die
    /// mid-protocol). `victim` is the announced deletion: everyone knows it
    /// is gone, so no instruction is ever addressed to it; an unannounced
    /// `casualty` instead has its in-flight messages dropped by the engine.
    fn execute_protocol(
        &mut self,
        plan: &RepairPlan,
        victim: NodeId,
        free_before: &[NodeId],
        casualty: Option<NodeId>,
    ) {
        let participants: Vec<NodeId> = plan
            .participants()
            .into_iter()
            .filter(|&p| self.network.contains(p))
            .collect();
        let Some(&coordinator) = participants.first() else {
            // Nothing to coordinate (degree <= 1 drop, or empty plan).
            return;
        };
        self.repair_seq += 1;
        let repair = self.repair_seq;

        // Phase 1 — probe: the coordinator contacts every participant.
        for &p in &participants {
            if p != coordinator {
                self.network.send(coordinator, p, Msg::Probe { repair });
            }
        }
        self.step_and_drain();

        // The adversary may strike while the repair is in flight: messages
        // to the casualty from here on are dropped by the engine.
        if let Some(dead) = casualty {
            self.network.remove_node(dead);
        }
        // Coordinator failover: if the casualty was the coordinator, the
        // next-smallest live participant takes over for the remaining
        // phases (it holds the same plan after the grant exchange).
        let coordinator = if self.network.contains(coordinator) {
            coordinator
        } else {
            match participants
                .iter()
                .copied()
                .find(|&p| self.network.contains(p))
            {
                Some(successor) => successor,
                None => return,
            }
        };

        // Phase 2 — grant: participants return the membership state the
        // repair decisions are based on (their duty *before* this repair).
        for &p in &participants {
            if p != coordinator && self.network.contains(p) {
                let free = free_before.binary_search(&p).is_ok();
                self.network
                    .send(p, coordinator, Msg::Grant { repair, free });
            }
        }
        self.step_and_drain();

        // Phase 3 — link: edge install/strip instructions to both endpoints
        // of every planned edge (all actions disseminate in one round; the
        // coordinator has the full plan after the grants).
        for action in &plan.actions {
            let color = action.color();
            let delta = action.delta();
            for &(a, b) in &delta.removed {
                self.send_to_endpoints(coordinator, victim, a, b, |other| Msg::Unlink {
                    color,
                    other,
                });
            }
            for &(a, b) in &delta.added {
                self.send_to_endpoints(coordinator, victim, a, b, |other| Msg::Link {
                    color,
                    other,
                });
            }
        }
        self.step_and_drain();

        // Phase 4 — splice gossip: the largest cloud under construction
        // needs ceil(log2 m) further waves to finish its Hamilton-cycle
        // splice; smaller builds complete within those same rounds.
        let m = plan.max_built_cloud();
        if m >= 2 {
            let built: Vec<(xheal_graph::CloudColor, Vec<NodeId>)> = plan
                .actions
                .iter()
                .filter_map(|a| match a {
                    PlanAction::BuildCloud { color, members, .. } if members.len() >= 2 => {
                        Some((*color, members.clone()))
                    }
                    _ => None,
                })
                .collect();
            let waves = usize::BITS - (m - 1).leading_zeros(); // ceil(log2 m)
            for wave in 0..waves {
                for (color, members) in &built {
                    // One token per cloud per wave, rotating over the
                    // members other than the coordinator (its own splice
                    // work is local) so every modeled wave costs a round.
                    let eligible: Vec<NodeId> = members
                        .iter()
                        .copied()
                        .filter(|&u| u != coordinator && self.network.contains(u))
                        .collect();
                    if let Some(&target) = eligible.get(wave as usize % eligible.len().max(1)) {
                        self.network.send(
                            coordinator,
                            target,
                            Msg::Splice {
                                color: *color,
                                wave,
                            },
                        );
                    }
                }
                self.step_and_drain();
            }
        }
    }

    /// Sends `make(other)` to both endpoints of the edge `(a, b)` — each
    /// endpoint must install/strip its side. Self-sends are local
    /// computation at the coordinator and cost nothing; the announced
    /// `victim` is known-dead and skipped.
    fn send_to_endpoints(
        &mut self,
        coordinator: NodeId,
        victim: NodeId,
        a: NodeId,
        b: NodeId,
        make: impl Fn(NodeId) -> Msg,
    ) {
        if a != coordinator && a != victim {
            self.network.send(coordinator, a, make(b));
        }
        if b != coordinator && b != victim {
            self.network.send(coordinator, b, make(a));
        }
    }

    /// Advances one round if messages are staged and clears delivered mail
    /// (recipients process instructions immediately).
    fn step_and_drain(&mut self) {
        if self.network.step_if_pending() {
            for v in self.network.nodes_with_mail() {
                let _ = self.network.drain_inbox(v);
            }
        }
    }
}

impl Healer for DistXheal {
    fn name(&self) -> &'static str {
        "xheal-dist"
    }

    fn graph(&self) -> &Graph {
        DistXheal::graph(self)
    }

    fn on_insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError> {
        self.insert(v, neighbors)
    }

    fn on_delete(&mut self, v: NodeId) -> Result<(), HealError> {
        self.delete(v).map(|_| ())
    }
}

/// Check helper: the processors registered in the engine are exactly the
/// graph's nodes (used by tests).
pub fn network_mirrors_graph(net: &DistXheal) -> bool {
    let graph_nodes: BTreeSet<NodeId> = net.graph.nodes().collect();
    graph_nodes.len() == net.network.len() && graph_nodes.iter().all(|&v| net.network.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use xheal_core::{HealCase, Xheal};
    use xheal_graph::{components, generators};

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn star_deletion_matches_centralized() {
        let g0 = generators::star(12);
        let cfg = XhealConfig::new(4).with_seed(5);
        let mut central = Xheal::new(&g0, cfg.clone());
        let mut dist = DistXheal::new(&g0, cfg);
        central.heal_delete(n(0)).unwrap();
        dist.delete(n(0)).unwrap();
        assert_eq!(central.graph(), dist.graph());
        assert_eq!(central.stats(), dist.planner().stats());
    }

    #[test]
    fn costs_record_case_and_degree() {
        let mut dist = DistXheal::new(&generators::star(9), XhealConfig::new(4).with_seed(1));
        dist.delete(n(0)).unwrap();
        let c = &dist.costs()[0];
        assert_eq!(c.case, HealCase::AllBlack);
        assert_eq!(c.black_degree, 8);
        assert_eq!(c.degree, 8);
        assert!(c.rounds >= 3, "probe, grant, link at minimum");
        assert!(c.messages as usize >= 2 * 8, "probe+grant to 8 leaves");
    }

    #[test]
    fn dropped_deletion_costs_nothing() {
        let mut dist = DistXheal::new(&generators::path(4), XhealConfig::default());
        dist.delete(n(0)).unwrap();
        let c = &dist.costs()[0];
        assert_eq!(c.case, HealCase::Dropped);
        assert_eq!((c.rounds, c.messages), (0, 0));
    }

    #[test]
    fn churn_keeps_network_and_engine_in_step() {
        let mut rng = StdRng::seed_from_u64(3);
        let g0 = generators::connected_erdos_renyi(24, 0.15, &mut rng);
        let mut dist = DistXheal::new(&g0, XhealConfig::new(4).with_seed(9));
        let mut next = 1000u64;
        for step in 0..40 {
            let nodes = dist.graph().node_vec();
            if step % 3 == 0 {
                let u = nodes[rng.random_range(0..nodes.len())];
                dist.insert(n(next), &[u]).unwrap();
                next += 1;
            } else {
                let victim = nodes[rng.random_range(0..nodes.len())];
                dist.delete(victim).unwrap();
            }
            assert!(components::is_connected(dist.graph()), "step {step}");
            assert!(network_mirrors_graph(&dist), "step {step}");
        }
    }

    #[test]
    fn mid_protocol_failure_drops_messages_but_converges() {
        let mut rng = StdRng::seed_from_u64(11);
        let g0 = generators::connected_erdos_renyi(30, 0.12, &mut rng);
        let mut dist = DistXheal::new(&g0, XhealConfig::new(4).with_seed(2));
        // Warm up so clouds exist and plans touch many nodes.
        for _ in 0..6 {
            let nodes = dist.graph().node_vec();
            dist.delete(nodes[rng.random_range(0..nodes.len())])
                .unwrap();
        }
        assert_eq!(
            dist.counters().dropped,
            0,
            "clean protocol runs never drop messages"
        );
        // Kill a neighbor of the victim mid-protocol: it participates in
        // the repair, so link/splice messages addressed to it get dropped.
        let v = dist
            .graph()
            .node_vec()
            .into_iter()
            .max_by_key(|&u| dist.graph().degree(u))
            .unwrap();
        let casualty = dist.graph().neighbors(v).next().unwrap();
        dist.delete_with_mid_protocol_failure(v, casualty).unwrap();
        assert!(
            dist.counters().dropped > 0,
            "in-flight messages were dropped"
        );
        assert!(!dist.graph().contains_node(v));
        assert!(!dist.graph().contains_node(casualty));
        assert!(components::is_connected(dist.graph()));
        assert_eq!(dist.costs().len(), 8, "both deletions accounted");
    }

    #[test]
    fn coordinator_death_mid_protocol_fails_over() {
        // The casualty is chosen as the plan's coordinator (the least-id
        // participant): a successor must finish the repair.
        let g0 = generators::star(10);
        let mut dist = DistXheal::new(&g0, XhealConfig::new(4).with_seed(7));
        // Deleting the hub makes every leaf a participant; the least-id
        // leaf (node 1) coordinates. Kill it mid-protocol.
        dist.delete_with_mid_protocol_failure(n(0), n(1)).unwrap();
        assert!(components::is_connected(dist.graph()));
        assert_eq!(dist.graph().node_count(), 8);
    }

    #[test]
    fn insert_and_delete_validation_errors() {
        let mut dist = DistXheal::new(&generators::cycle(5), XhealConfig::default());
        assert_eq!(dist.insert(n(0), &[]), Err(HealError::NodeExists(n(0))));
        assert_eq!(
            dist.insert(n(9), &[n(44)]),
            Err(HealError::NeighborMissing(n(44)))
        );
        assert_eq!(
            dist.delete(n(77)).map(|_| ()).unwrap_err(),
            HealError::NodeMissing(n(77))
        );
        assert_eq!(
            dist.delete_with_mid_protocol_failure(n(0), n(0))
                .map(|_| ())
                .unwrap_err(),
            HealError::NodeMissing(n(0))
        );
    }
}
