//! # xheal-dist
//!
//! The distributed Xheal of the paper's Section 5: the same healing
//! decisions as the centralized implementation — literally the same
//! [`RepairPlanner`] — executed as a message-passing protocol by per-node
//! actor state machines over any [`xheal_sim::NetworkEngine`]. The design
//! follows the fully-distributed direction of *DEX: Self-healing Expanders*
//! (Pandurangan, Robinson & Trehan): healing logic is fixed, only the
//! execution substrate changes.
//!
//! Each repair runs as message-driven phase transitions of the actors
//! (see the `actor` module-level docs in the source):
//!
//! 1. **Probe** — the coordinator (the least-id live participant of the
//!    repair plan) contacts every participant;
//! 2. **Grant** — participants return their local cloud state;
//! 3. **Link** — the coordinator disseminates edge install/strip
//!    instructions to both endpoints of every planned edge;
//! 4. **Splice** — cloud construction finishes with ⌈log₂ m⌉ acknowledged
//!    gossip waves per cloud of m members being built (the distributed
//!    Hamilton-cycle splice).
//!
//! Every message carries its repair's sequence number, so *concurrent*
//! repairs interleave freely in flight: [`DistXheal::delete_many`] keeps
//! several deletions' protocols in the air at once, and
//! [`DistXheal::delete_batch`] heals simultaneous deletions with one
//! concurrent protocol per dead component — mirroring
//! [`xheal_core::Xheal::heal_delete_batch`]'s grouping exactly.
//!
//! Rounds are O(log n) per repair and messages O(κ·deg(v)) amortized —
//! Theorem 5's budgets, measured for real by [`DistXheal::costs`] and
//! checked by experiments E5/E7 on both the synchronous engine and the
//! latency/reordering [`xheal_sim::AsyncNetwork`].
//!
//! Because the planner consumes the healer's seeded randomness identically
//! in every executor, [`DistXheal`] over *any* engine and
//! [`xheal_core::Xheal`] produce bit-identical topologies on identical
//! schedules — the cross-validation suite asserts exactly that for the
//! synchronous and the zero-latency asynchronous engines.
//!
//! # Examples
//!
//! ```
//! use xheal_core::XhealConfig;
//! use xheal_dist::DistXheal;
//! use xheal_graph::{components, generators, NodeId};
//!
//! let mut net = DistXheal::new(&generators::star(10), XhealConfig::new(4));
//! net.delete(NodeId::new(0))?; // adversary kills the hub
//! assert!(components::is_connected(net.graph()));
//! let cost = &net.costs()[0];
//! assert!(cost.rounds > 0 && cost.messages > 0);
//! # Ok::<(), xheal_core::HealError>(())
//! ```
//!
//! The same protocol under message latency:
//!
//! ```
//! use xheal_core::XhealConfig;
//! use xheal_dist::DistXheal;
//! use xheal_graph::{components, generators, NodeId};
//! use xheal_sim::{AsyncConfig, AsyncNetwork};
//!
//! let g0 = generators::star(10);
//! let engine = AsyncNetwork::new(AsyncConfig::uniform(1, 3, 99));
//! let mut net = DistXheal::with_engine(&g0, XhealConfig::new(4), engine);
//! net.delete(NodeId::new(0))?;
//! assert!(components::is_connected(net.graph()));
//! # Ok::<(), xheal_core::HealError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod messages;

use std::collections::BTreeSet;

use xheal_core::{
    ApplyScratch, BatchReport, BatchVictim, DeletionReport, DistCost, Event, HealCase, HealError,
    Healer, HealingEngine, Outcome, RepairPlanner, SinkRegistry, TopologyDelta, TopologySink,
    XhealConfig,
};
use xheal_graph::{EdgeLabels, Graph, NodeId};
use xheal_sim::{Counters, NetworkEngine, SyncNetwork};
use xheal_trace::{hook, Layer, SharedTracer};

use actor::{ActorRuntime, CostMeta};

pub use messages::Msg;
pub use xheal_core::RepairCost;

/// The distributed Xheal network: the live graph, the shared repair
/// planner, and the actor runtime executing every plan as messages over
/// the engine `N`.
#[derive(Clone, Debug)]
pub struct DistXheal<N: NetworkEngine<Msg> = SyncNetwork<Msg>> {
    graph: Graph,
    planner: RepairPlanner,
    runtime: ActorRuntime<N>,
    costs: Vec<RepairCost>,
    /// Sequence number tagging each repair's messages.
    repair_seq: u64,
    /// Topology-delta subscribers (cloning the executor drops them).
    sinks: SinkRegistry,
    /// Reusable incident-edge buffer for the deletion hot loop.
    scratch_incident: Vec<(NodeId, EdgeLabels)>,
    /// Reusable sorted buffer holding the pre-repair free-node snapshot.
    scratch_free: Vec<NodeId>,
    /// Reusable grouped-application buffers for plan flushes.
    scratch_apply: ApplyScratch,
    /// Optional span recorder shared with the planner; `None` keeps every
    /// instrumentation site a single branch.
    tracer: Option<SharedTracer>,
}

impl DistXheal<SyncNetwork<Msg>> {
    /// Wraps an initial network over the synchronous LOCAL-model engine:
    /// every node becomes a processor; all existing edges are black, per
    /// the model.
    pub fn new(initial: &Graph, config: XhealConfig) -> Self {
        DistXheal::with_engine(initial, config, SyncNetwork::new())
    }

    /// Starts a builder composing configuration, seeding, topology sinks,
    /// and the message engine before wrapping a network.
    ///
    /// # Examples
    ///
    /// ```
    /// use xheal_dist::DistXheal;
    /// use xheal_graph::generators;
    ///
    /// let net = DistXheal::builder()
    ///     .kappa(4)
    ///     .seed(7)
    ///     .build(&generators::star(8));
    /// assert_eq!(net.planner().kappa(), 4);
    /// ```
    pub fn builder() -> DistXhealBuilder<SyncNetwork<Msg>> {
        DistXhealBuilder {
            config: XhealConfig::default(),
            engine: SyncNetwork::new(),
            sinks: SinkRegistry::default(),
        }
    }
}

impl<N: NetworkEngine<Msg>> DistXheal<N> {
    /// Wraps an initial network over a caller-supplied engine (e.g. an
    /// [`xheal_sim::AsyncNetwork`] with latency and faults). Existing
    /// registrations in the engine are kept; every graph node is
    /// (idempotently) registered as a processor.
    pub fn with_engine(initial: &Graph, config: XhealConfig, mut engine: N) -> Self {
        engine.set_classifier(Msg::KIND_LABELS, |m| m.kind_index());
        let mut runtime = ActorRuntime::new(engine);
        for v in initial.nodes() {
            runtime.add_node(v);
        }
        DistXheal {
            graph: initial.clone(),
            planner: RepairPlanner::new(initial.nodes(), config),
            runtime,
            costs: Vec::new(),
            repair_seq: 0,
            sinks: SinkRegistry::default(),
            scratch_incident: Vec::new(),
            scratch_free: Vec::new(),
            scratch_apply: ApplyScratch::default(),
            tracer: None,
        }
    }

    /// Attaches (or detaches, with `None`) a tracer recording protocol and
    /// planner spans. Protocol instants (`proto.round`, `proto.done`) land
    /// next to the planner's decision spans in the same ledger. Note that
    /// this executor's repair sequence advances per *protocol* (one per
    /// batch stage), so after batch deletions it runs ahead of the
    /// planner's per-plan sequence.
    pub fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        self.planner.set_tracer(tracer.clone());
        self.runtime.engine_mut().set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Registers a [`TopologySink`] observing every structural change this
    /// executor applies from now on (see
    /// [`HealingEngine::subscribe`]).
    pub fn subscribe(&mut self, sink: Box<dyn TopologySink>) {
        self.sinks.register(sink);
    }

    /// Checks that the processors registered in the engine are exactly the
    /// graph's nodes (the actor runtime mirrors the network membership).
    pub fn mirrors_graph(&self) -> bool {
        let graph_nodes: BTreeSet<NodeId> = self.graph.nodes().collect();
        graph_nodes.len() == self.engine().len()
            && graph_nodes.iter().all(|&v| self.engine().contains(v))
    }

    /// The current (healed) network graph `G_t`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared decision engine — identical state to a centralized
    /// [`xheal_core::Xheal`] replaying the same schedule with the same seed.
    pub fn planner(&self) -> &RepairPlanner {
        &self.planner
    }

    /// The message engine underneath the actors.
    pub fn engine(&self) -> &N {
        self.runtime.engine()
    }

    /// Per-repair protocol costs, ascending by repair sequence (deletion
    /// order; batch deletions contribute one entry per stage).
    pub fn costs(&self) -> &[RepairCost] {
        &self.costs
    }

    /// Engine-level totals (rounds, messages, drops) across the whole run.
    pub fn counters(&self) -> Counters {
        self.runtime.counters()
    }

    /// Sent messages broken down by protocol phase, as parallel
    /// `(labels, counts)` slices over [`Msg::KIND_LABELS`] — the
    /// observability hook orchestration layers read to see *where* the
    /// communication budget goes (probe/grant fan-out vs. splice gossip).
    pub fn message_breakdown(&self) -> (&'static [&'static str], &[u64]) {
        self.engine().kind_counts()
    }

    /// Adversarial insertion of `v` with black edges to `neighbors`.
    /// No healing action and no messages (Algorithm 3.1 lines 1–2) — the
    /// new processor is just registered.
    ///
    /// # Errors
    ///
    /// [`HealError::NodeExists`] if `v` is present;
    /// [`HealError::NeighborMissing`] if any neighbor is absent.
    pub fn insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError> {
        if self.graph.contains_node(v) {
            return Err(HealError::NodeExists(v));
        }
        for &u in neighbors {
            if !self.graph.contains_node(u) {
                return Err(HealError::NeighborMissing(u));
            }
        }
        self.graph.add_node(v).expect("checked fresh");
        if !self.sinks.is_empty() {
            self.sinks.emit(TopologyDelta::NodeAdded(v));
        }
        for &u in neighbors {
            if u != v {
                let created = self.graph.add_black_edge(v, u).unwrap_or(false);
                if created && !self.sinks.is_empty() {
                    self.sinks.emit(TopologyDelta::EdgeAdded {
                        a: v,
                        b: u,
                        color: None,
                    });
                }
            }
        }
        self.planner.note_insert(v);
        self.runtime.add_node(v);
        Ok(())
    }

    /// Adversarial deletion of `v`, healed by running the repair plan as a
    /// probe/grant/link/splice actor protocol over the engine.
    ///
    /// # Errors
    ///
    /// [`HealError::NodeMissing`] if `v` is not in the network.
    pub fn delete(&mut self, v: NodeId) -> Result<DeletionReport, HealError> {
        let report = self.start_deletion(v)?;
        self.run_protocol();
        self.collect_costs();
        Ok(report)
    }

    /// Deletes every victim (in order), then runs all their repair
    /// protocols **concurrently**: the deletions are planned with
    /// sequential semantics — so the healed topology is bit-identical to
    /// deleting them one at a time — but their probe/grant/link/splice
    /// exchanges interleave in flight, which is what overlapping failures
    /// look like on a real network. Per-repair costs are tagged by
    /// sequence number and never bleed into each other.
    ///
    /// # Errors
    ///
    /// [`HealError::NodeMissing`] if any victim is absent or duplicated
    /// (checked before any mutation).
    pub fn delete_many(&mut self, victims: &[NodeId]) -> Result<Vec<DeletionReport>, HealError> {
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        for &v in victims {
            if !seen.insert(v) || !self.graph.contains_node(v) {
                return Err(HealError::NodeMissing(v));
            }
        }
        let mut reports = Vec::with_capacity(victims.len());
        for &v in victims {
            reports.push(self.start_deletion(v).expect("validated above"));
        }
        self.run_protocol();
        self.collect_costs();
        Ok(reports)
    }

    /// Deletes all `victims` **simultaneously** and heals each dead
    /// component with its own concurrent repair protocol — the distributed
    /// mirror of [`xheal_core::Xheal::heal_delete_batch`], consuming the
    /// identical [`xheal_core::BatchRepairPlan`], hence producing the
    /// identical topology.
    ///
    /// Costs are recorded per stage (the shared detach prologue when it
    /// does structural work, then one entry per dead component), labelled
    /// [`HealCase::Batch`].
    ///
    /// # Errors
    ///
    /// [`HealError::NodeMissing`] if any victim is absent or duplicated
    /// (checked before any mutation).
    pub fn delete_batch(&mut self, victims: &[NodeId]) -> Result<BatchReport, HealError> {
        let ctx = BatchVictim::capture(&self.graph, victims)?;
        for bv in &ctx {
            let _ = self.graph.remove_node(bv.node);
            self.runtime.remove_node(bv.node);
            if !self.sinks.is_empty() {
                self.sinks.emit(TopologyDelta::NodeRemoved(bv.node));
            }
        }
        let mut free_before = self.take_free_snapshot();
        let plan = self.planner.plan_batch_deletion(&ctx);
        plan.apply_streamed_with(&mut self.graph, &mut self.sinks, &mut self.scratch_apply);
        let dead: Vec<NodeId> = ctx.iter().map(|bv| bv.node).collect();
        for stage in &plan.stages {
            if stage.component.is_empty() && stage.actions.is_empty() {
                continue; // structurally empty detach prologue
            }
            self.repair_seq += 1;
            hook::instant(
                &self.tracer,
                Layer::Protocol,
                "proto.launch",
                self.repair_seq,
                stage.actions.len() as u64,
            );
            let black_degree = stage
                .component
                .iter()
                .map(|v| {
                    let i = ctx.binary_search_by_key(v, |bv| bv.node).expect("victim");
                    ctx[i].black_boundary.len()
                })
                .sum();
            self.runtime.begin_repair(
                self.repair_seq,
                &stage.actions,
                &dead,
                &free_before,
                CostMeta {
                    case: HealCase::Batch,
                    black_degree,
                    degree: stage.component.len(),
                    combined: false,
                },
            );
        }
        free_before.clear();
        self.scratch_free = free_before;
        self.run_protocol();
        self.collect_costs();
        Ok(plan.report)
    }

    /// Like [`DistXheal::delete`], but the adversary additionally kills
    /// `casualty` *mid-protocol* (right after the probe wave), so every
    /// later message addressed to it is dropped by the engine — visible in
    /// [`DistXheal::counters`]'s `dropped` — and the casualty itself is
    /// healed immediately afterwards. If the casualty was the repair's
    /// coordinator, the state machine fails over to the next live
    /// participant. Fault-injection surface for testing protocol
    /// robustness.
    ///
    /// # Errors
    ///
    /// [`HealError::NodeMissing`] if either node is absent (`casualty` must
    /// also differ from `v`).
    pub fn delete_with_mid_protocol_failure(
        &mut self,
        v: NodeId,
        casualty: NodeId,
    ) -> Result<(DeletionReport, DeletionReport), HealError> {
        if casualty == v || !self.graph.contains_node(casualty) {
            return Err(HealError::NodeMissing(casualty));
        }
        let first = self.start_deletion(v)?;
        if self.runtime.has_pending() {
            self.runtime.step_once(); // deliver the probe wave…
        }
        self.runtime.remove_node(casualty); // …then the adversary strikes
        self.run_protocol();
        self.collect_costs();
        let second = self.delete(casualty)?;
        Ok((first, second))
    }

    /// Removes `v` from graph and engine, plans its repair, applies the
    /// plan to the graph, and kicks off the protocol — without running it.
    fn start_deletion(&mut self, v: NodeId) -> Result<DeletionReport, HealError> {
        if !self.graph.contains_node(v) {
            return Err(HealError::NodeMissing(v));
        }
        let degree = self.graph.degree(v).expect("checked present");
        let mut incident = std::mem::take(&mut self.scratch_incident);
        incident.clear();
        self.graph
            .remove_node_into(v, &mut incident)
            .expect("checked present");
        self.runtime.remove_node(v);
        if !self.sinks.is_empty() {
            self.sinks.emit(TopologyDelta::NodeRemoved(v));
        }

        // Pre-repair bridge-duty snapshot: the grant messages must carry
        // the state the decisions were *made* from, and plan_deletion
        // advances the planner past it.
        let mut free_before = self.take_free_snapshot();
        let plan = self.planner.plan_deletion(v, &incident, degree);
        plan.apply_streamed_with(&mut self.graph, &mut self.sinks, &mut self.scratch_apply);
        self.repair_seq += 1;
        hook::instant(
            &self.tracer,
            Layer::Protocol,
            "proto.launch",
            self.repair_seq,
            plan.actions.len() as u64,
        );
        self.runtime.begin_repair(
            self.repair_seq,
            &plan.actions,
            &[v],
            &free_before,
            CostMeta {
                case: plan.case(),
                black_degree: plan.report.black_degree,
                degree,
                combined: plan.report.combined,
            },
        );
        incident.clear();
        self.scratch_incident = incident;
        free_before.clear();
        self.scratch_free = free_before;
        Ok(plan.report)
    }

    /// The sorted free-node snapshot (nodes with no secondary duty), into
    /// the reusable scratch buffer. `nodes()` is ascending, so the buffer
    /// supports binary-search membership tests.
    fn take_free_snapshot(&mut self) -> Vec<NodeId> {
        let mut free = std::mem::take(&mut self.scratch_free);
        free.clear();
        free.extend(
            self.graph
                .nodes()
                .filter(|&u| self.planner.node_state(u).is_none_or(|st| st.is_free())),
        );
        free
    }

    /// Runs every active repair protocol to completion, recording one
    /// `proto.round` instant per engine round when a tracer is attached.
    fn run_protocol(&mut self) {
        if self.tracer.is_none() {
            self.runtime.run_active();
            return;
        }
        hook::begin(&self.tracer, Layer::Protocol, "proto.run", 0, 0);
        let mut rounds = 0u64;
        while self.runtime.has_pending() {
            let before = self.runtime.counters();
            self.runtime.step_once();
            let moved = self.runtime.counters().since(before).messages;
            rounds += 1;
            hook::instant(&self.tracer, Layer::Protocol, "proto.round", 0, moved);
        }
        // Close out repairs whose live participants all died (mirrors the
        // stuck-repair handling inside `run_active`).
        self.runtime.run_active();
        hook::end(&self.tracer, Layer::Protocol, "proto.run", 0, rounds);
    }

    fn collect_costs(&mut self) {
        let completed = self.runtime.take_completed();
        for c in &completed {
            hook::instant(
                &self.tracer,
                Layer::Protocol,
                "proto.done",
                c.repair,
                c.messages,
            );
        }
        self.costs.extend(completed);
    }
}

impl<N: NetworkEngine<Msg>> Healer for DistXheal<N> {
    fn name(&self) -> &'static str {
        "xheal-dist"
    }

    fn graph(&self) -> &Graph {
        DistXheal::graph(self)
    }

    fn on_insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError> {
        self.insert(v, neighbors)
    }

    fn on_delete(&mut self, v: NodeId) -> Result<(), HealError> {
        self.delete(v).map(|_| ())
    }

    fn on_delete_batch(&mut self, victims: &[NodeId]) -> Result<(), HealError> {
        self.delete_batch(victims).map(|_| ())
    }
}

impl<N: NetworkEngine<Msg>> DistXheal<N> {
    /// Snapshot of the cost state, taken before an event is applied so the
    /// event's [`DistCost`] can be carved out afterwards.
    fn cost_mark(&self) -> (usize, Counters) {
        (self.costs.len(), self.counters())
    }

    /// The [`DistCost`] accrued since `mark`: wall-clock engine totals plus
    /// the per-repair records the event appended.
    fn cost_since(&self, mark: (usize, Counters)) -> DistCost {
        let (costs_len, counters) = mark;
        let spent = self.counters().since(counters);
        DistCost {
            rounds: spent.rounds,
            messages: spent.messages,
            repairs: self.costs[costs_len..].to_vec(),
        }
    }
}

impl<N: NetworkEngine<Msg>> HealingEngine for DistXheal<N> {
    fn name(&self) -> &'static str {
        "xheal-dist"
    }

    fn graph(&self) -> &Graph {
        DistXheal::graph(self)
    }

    fn apply(&mut self, event: &Event) -> Result<Outcome, HealError> {
        match event {
            Event::Insert { node, neighbors } => {
                self.insert(*node, neighbors)?;
                Ok(Outcome::Inserted { cost: None })
            }
            Event::Delete { node } => {
                let mark = self.cost_mark();
                let report = self.delete(*node)?;
                Ok(Outcome::Healed {
                    report,
                    cost: Some(self.cost_since(mark)),
                })
            }
            Event::DeleteBatch { nodes } => {
                let mark = self.cost_mark();
                let report = self.delete_batch(nodes)?;
                Ok(Outcome::Batch {
                    report,
                    cost: Some(self.cost_since(mark)),
                })
            }
        }
    }

    fn subscribe(&mut self, sink: Box<dyn TopologySink>) {
        DistXheal::subscribe(self, sink);
    }

    fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        DistXheal::set_tracer(self, tracer);
    }
}

/// Builder for [`DistXheal`]: composes configuration, seeding, topology
/// sinks, and the message engine. Start from [`DistXheal::builder`] (the
/// synchronous engine) and swap substrates with
/// [`DistXhealBuilder::engine`].
///
/// # Examples
///
/// ```
/// use xheal_dist::{DistXheal, Msg};
/// use xheal_graph::generators;
/// use xheal_sim::{AsyncConfig, AsyncNetwork};
///
/// let net = DistXheal::builder()
///     .kappa(4)
///     .seed(7)
///     .engine(AsyncNetwork::<Msg>::new(AsyncConfig::uniform(1, 3, 9)))
///     .build(&generators::star(8));
/// assert_eq!(net.planner().kappa(), 4);
/// ```
#[derive(Debug)]
pub struct DistXhealBuilder<N: NetworkEngine<Msg>> {
    config: XhealConfig,
    engine: N,
    sinks: SinkRegistry,
}

impl<N: NetworkEngine<Msg>> DistXhealBuilder<N> {
    /// Sets the cloud expander degree κ.
    ///
    /// # Panics
    ///
    /// Panics if `kappa` is odd or less than 2 (see [`XhealConfig::new`]).
    #[must_use]
    pub fn kappa(mut self, kappa: usize) -> Self {
        self.config = self.config.with_kappa(kappa);
        self
    }

    /// Sets the healer randomness seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Replaces the whole configuration (keeping engine and sinks).
    #[must_use]
    pub fn config(mut self, config: XhealConfig) -> Self {
        self.config = config;
        self
    }

    /// Swaps the message-delivery substrate (e.g. an
    /// [`xheal_sim::AsyncNetwork`] with latency and faults).
    #[must_use]
    pub fn engine<M: NetworkEngine<Msg>>(self, engine: M) -> DistXhealBuilder<M> {
        DistXhealBuilder {
            config: self.config,
            engine,
            sinks: self.sinks,
        }
    }

    /// Registers a [`TopologySink`] the executor starts with.
    #[must_use]
    pub fn sink(mut self, sink: Box<dyn TopologySink>) -> Self {
        self.sinks.register(sink);
        self
    }

    /// Wraps `initial`, consuming the builder.
    pub fn build(self, initial: &Graph) -> DistXheal<N> {
        let mut net = DistXheal::with_engine(initial, self.config, self.engine);
        net.sinks = self.sinks;
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use xheal_core::Xheal;
    use xheal_graph::{components, generators};
    use xheal_sim::{AsyncConfig, AsyncNetwork};

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn star_deletion_matches_centralized() {
        let g0 = generators::star(12);
        let cfg = XhealConfig::new(4).with_seed(5);
        let mut central = Xheal::new(&g0, cfg.clone());
        let mut dist = DistXheal::new(&g0, cfg);
        central.heal_delete(n(0)).unwrap();
        dist.delete(n(0)).unwrap();
        assert_eq!(central.graph(), dist.graph());
        assert_eq!(central.stats(), dist.planner().stats());
    }

    #[test]
    fn costs_record_case_and_degree() {
        let mut dist = DistXheal::new(&generators::star(9), XhealConfig::new(4).with_seed(1));
        dist.delete(n(0)).unwrap();
        let c = &dist.costs()[0];
        assert_eq!(c.repair, 1);
        assert_eq!(c.case, HealCase::AllBlack);
        assert_eq!(c.black_degree, 8);
        assert_eq!(c.degree, 8);
        assert!(c.rounds >= 3, "probe, grant, link at minimum");
        assert!(c.messages as usize >= 2 * 8, "probe+grant to 8 leaves");
    }

    #[test]
    fn dropped_deletion_costs_nothing() {
        let mut dist = DistXheal::new(&generators::path(4), XhealConfig::default());
        dist.delete(n(0)).unwrap();
        let c = &dist.costs()[0];
        assert_eq!(c.case, HealCase::Dropped);
        assert_eq!((c.rounds, c.messages), (0, 0));
    }

    #[test]
    fn churn_keeps_network_and_engine_in_step() {
        let mut rng = StdRng::seed_from_u64(3);
        let g0 = generators::connected_erdos_renyi(24, 0.15, &mut rng);
        let mut dist = DistXheal::new(&g0, XhealConfig::new(4).with_seed(9));
        let mut next = 1000u64;
        for step in 0..40 {
            let nodes = dist.graph().node_vec();
            if step % 3 == 0 {
                let u = nodes[rng.random_range(0..nodes.len())];
                dist.insert(n(next), &[u]).unwrap();
                next += 1;
            } else {
                let victim = nodes[rng.random_range(0..nodes.len())];
                dist.delete(victim).unwrap();
            }
            assert!(components::is_connected(dist.graph()), "step {step}");
            assert!(dist.mirrors_graph(), "step {step}");
        }
    }

    #[test]
    fn mid_protocol_failure_drops_messages_but_converges() {
        let mut rng = StdRng::seed_from_u64(11);
        let g0 = generators::connected_erdos_renyi(30, 0.12, &mut rng);
        let mut dist = DistXheal::new(&g0, XhealConfig::new(4).with_seed(2));
        // Warm up so clouds exist and plans touch many nodes.
        for _ in 0..6 {
            let nodes = dist.graph().node_vec();
            dist.delete(nodes[rng.random_range(0..nodes.len())])
                .unwrap();
        }
        assert_eq!(
            dist.counters().dropped,
            0,
            "clean protocol runs never drop messages"
        );
        // Kill a neighbor of the victim mid-protocol: it participates in
        // the repair, so link/splice messages addressed to it get dropped.
        let v = dist
            .graph()
            .node_vec()
            .into_iter()
            .max_by_key(|&u| dist.graph().degree(u))
            .unwrap();
        let casualty = dist.graph().neighbors(v).next().unwrap();
        dist.delete_with_mid_protocol_failure(v, casualty).unwrap();
        assert!(
            dist.counters().dropped > 0,
            "in-flight messages were dropped"
        );
        assert!(!dist.graph().contains_node(v));
        assert!(!dist.graph().contains_node(casualty));
        assert!(components::is_connected(dist.graph()));
        assert_eq!(dist.costs().len(), 8, "both deletions accounted");
    }

    #[test]
    fn coordinator_death_mid_protocol_fails_over() {
        // The casualty is chosen as the plan's coordinator (the least-id
        // participant): a successor must finish the repair.
        let g0 = generators::star(10);
        let mut dist = DistXheal::new(&g0, XhealConfig::new(4).with_seed(7));
        // Deleting the hub makes every leaf a participant; the least-id
        // leaf (node 1) coordinates. Kill it mid-protocol.
        dist.delete_with_mid_protocol_failure(n(0), n(1)).unwrap();
        assert!(components::is_connected(dist.graph()));
        assert_eq!(dist.graph().node_count(), 8);
    }

    #[test]
    fn insert_and_delete_validation_errors() {
        let mut dist = DistXheal::new(&generators::cycle(5), XhealConfig::default());
        assert_eq!(dist.insert(n(0), &[]), Err(HealError::NodeExists(n(0))));
        assert_eq!(
            dist.insert(n(9), &[n(44)]),
            Err(HealError::NeighborMissing(n(44)))
        );
        assert_eq!(
            dist.delete(n(77)).map(|_| ()).unwrap_err(),
            HealError::NodeMissing(n(77))
        );
        assert_eq!(
            dist.delete_with_mid_protocol_failure(n(0), n(0))
                .map(|_| ())
                .unwrap_err(),
            HealError::NodeMissing(n(0))
        );
        assert_eq!(
            dist.delete_many(&[n(1), n(1)]).unwrap_err(),
            HealError::NodeMissing(n(1))
        );
        assert_eq!(
            dist.delete_batch(&[n(404)]).unwrap_err(),
            HealError::NodeMissing(n(404))
        );
    }

    #[test]
    fn delete_many_matches_sequential_deletes_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(21);
        let g0 = generators::connected_erdos_renyi(32, 0.12, &mut rng);
        let cfg = XhealConfig::new(4).with_seed(77);
        let mut sequential = DistXheal::new(&g0, cfg.clone());
        let mut concurrent = DistXheal::new(&g0, cfg);
        let victims: Vec<NodeId> = g0.node_vec().into_iter().take(6).collect();
        for &v in &victims {
            sequential.delete(v).unwrap();
        }
        let reports = concurrent.delete_many(&victims).unwrap();
        assert_eq!(reports.len(), 6);
        assert_eq!(sequential.graph(), concurrent.graph());
        assert_eq!(sequential.planner().stats(), concurrent.planner().stats());
        assert!(components::is_connected(concurrent.graph()));
        // Six repairs, each with its own tagged cost.
        assert_eq!(concurrent.costs().len(), 6);
        let repairs: Vec<u64> = concurrent.costs().iter().map(|c| c.repair).collect();
        assert_eq!(repairs, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn concurrent_repairs_interleave_in_flight() {
        // With several protocols in the air at once, the wall-clock rounds
        // of the whole burst are far below the sum of per-repair rounds.
        let mut rng = StdRng::seed_from_u64(33);
        let g0 = generators::random_regular(64, 6, &mut rng);
        let mut dist = DistXheal::new(&g0, XhealConfig::new(4).with_seed(3));
        let victims: Vec<NodeId> = g0.node_vec().into_iter().step_by(9).take(6).collect();
        let before = dist.counters();
        dist.delete_many(&victims).unwrap();
        let spent = dist.counters().since(before);
        let per_repair_sum: u64 = dist.costs().iter().map(|c| c.rounds).sum();
        assert!(
            spent.rounds < per_repair_sum,
            "burst took {} rounds but repairs sum to {per_repair_sum} — no overlap happened",
            spent.rounds
        );
        assert!(components::is_connected(dist.graph()));
    }

    #[test]
    fn delete_batch_matches_centralized_batch() {
        let mut rng = StdRng::seed_from_u64(41);
        let g0 = generators::connected_erdos_renyi(40, 0.1, &mut rng);
        let cfg = XhealConfig::new(4).with_seed(13);
        let mut central = Xheal::new(&g0, cfg.clone());
        let mut dist = DistXheal::new(&g0, cfg);
        let victims: Vec<NodeId> = g0.node_vec().into_iter().take(5).collect();
        let cr = central.heal_delete_batch(&victims).unwrap();
        let dr = dist.delete_batch(&victims).unwrap();
        assert_eq!(central.graph(), dist.graph(), "batch topologies diverged");
        assert_eq!(central.stats(), dist.planner().stats());
        assert_eq!(cr.components, dr.components);
        assert!(components::is_connected(dist.graph()));
        let batch_costs: Vec<&RepairCost> = dist
            .costs()
            .iter()
            .filter(|c| c.case == HealCase::Batch)
            .collect();
        assert!(!batch_costs.is_empty());
        assert!(batch_costs.iter().any(|c| c.messages > 0));
    }

    #[test]
    fn async_engine_zero_latency_matches_sync() {
        let mut rng = StdRng::seed_from_u64(55);
        let g0 = generators::connected_erdos_renyi(28, 0.14, &mut rng);
        let cfg = XhealConfig::new(4).with_seed(19);
        let mut sync_net = DistXheal::new(&g0, cfg.clone());
        let engine: AsyncNetwork<Msg> = AsyncNetwork::new(AsyncConfig::zero_latency());
        let mut async_net = DistXheal::with_engine(&g0, cfg, engine);
        for i in 0..8 {
            let victim = sync_net.graph().node_vec()[i * 2];
            sync_net.delete(victim).unwrap();
            async_net.delete(victim).unwrap();
        }
        assert_eq!(sync_net.graph(), async_net.graph());
        // Zero latency ⇒ identical delivery schedule ⇒ identical costs.
        for (a, b) in sync_net.costs().iter().zip(async_net.costs()) {
            assert_eq!((a.rounds, a.messages), (b.rounds, b.messages));
        }
    }

    #[test]
    fn async_engine_with_latency_still_heals_identically() {
        let mut rng = StdRng::seed_from_u64(60);
        let g0 = generators::connected_erdos_renyi(28, 0.14, &mut rng);
        let cfg = XhealConfig::new(4).with_seed(23);
        let mut central = Xheal::new(&g0, cfg.clone());
        let engine: AsyncNetwork<Msg> =
            AsyncNetwork::new(AsyncConfig::uniform(1, 4, 7).with_jitter(2));
        let mut dist = DistXheal::with_engine(&g0, cfg, engine);
        for i in 0..8 {
            let nodes = central.graph().node_vec();
            let victim = nodes[(i * 3) % nodes.len()];
            central.heal_delete(victim).unwrap();
            dist.delete(victim).unwrap();
        }
        // Latency delays messages but decisions are the planner's: the
        // healed topology is unchanged, only the measured rounds grow.
        assert_eq!(central.graph(), dist.graph());
        assert!(dist.costs().iter().any(|c| c.rounds > 0));
        assert!(components::is_connected(dist.graph()));
    }

    #[test]
    fn drop_faults_do_not_stall_repairs() {
        let mut rng = StdRng::seed_from_u64(71);
        let g0 = generators::connected_erdos_renyi(26, 0.15, &mut rng);
        let engine: AsyncNetwork<Msg> =
            AsyncNetwork::new(AsyncConfig::uniform(1, 3, 5).with_drop_prob(0.08));
        let mut dist = DistXheal::with_engine(&g0, XhealConfig::new(4).with_seed(31), engine);
        for _ in 0..10 {
            let nodes = dist.graph().node_vec();
            let victim = nodes[rng.random_range(0..nodes.len())];
            dist.delete(victim).unwrap();
            assert!(components::is_connected(dist.graph()));
        }
        assert!(
            dist.counters().dropped > 0,
            "an 8% fault rate must actually lose messages"
        );
        assert_eq!(dist.costs().len(), 10, "every repair completed");
    }
}
