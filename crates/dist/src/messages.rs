//! The recovery protocol's message vocabulary.
//!
//! The per-repair cost record ([`xheal_core::RepairCost`]) lives in
//! `xheal-core` so structured [`xheal_core::Outcome`]s are executor-neutral;
//! this crate re-exports it.

use xheal_graph::{CloudColor, NodeId};

/// Messages of the distributed recovery protocol (Section 5's LOCAL model:
/// unbounded payloads, one hop per round).
///
/// A repair runs in phases, each a message-driven transition of the
/// per-node actors: the coordinator **probes** every affected node,
/// affected nodes **grant** their local cloud state back, the coordinator
/// disseminates **link**/**unlink** edge instructions, and cloud
/// construction finishes with O(log m) **splice** gossip waves (the
/// distributed Hamilton-cycle splice of the Law–Siu expander), each wave
/// acknowledged so the next can launch without a global clock.
///
/// Every message carries the sequence number of the repair it belongs to,
/// so any number of repairs can be in flight at once — actors demultiplex
/// on it, and the runtime attributes per-repair costs with it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Coordinator → participant: report your cloud memberships for this
    /// repair.
    Probe {
        /// Sequence number of the repair.
        repair: u64,
    },
    /// Participant → coordinator: local membership state (whether the node
    /// is free for bridge duty — the decision input of MakeSecondary).
    Grant {
        /// Sequence number of the repair.
        repair: u64,
        /// True when the sender has no secondary-cloud duty.
        free: bool,
    },
    /// Coordinator → edge endpoint: install a colored cloud edge to `other`.
    Link {
        /// Sequence number of the repair.
        repair: u64,
        /// Cloud color of the new edge.
        color: CloudColor,
        /// The other endpoint.
        other: NodeId,
    },
    /// Coordinator → edge endpoint: strip `color` from the edge to `other`.
    Unlink {
        /// Sequence number of the repair.
        repair: u64,
        /// Cloud color to strip.
        color: CloudColor,
        /// The other endpoint.
        other: NodeId,
    },
    /// Coordinator → splice target: run gossip wave `wave` of the cloud of
    /// `color` under construction.
    Splice {
        /// Sequence number of the repair.
        repair: u64,
        /// Cloud under construction.
        color: CloudColor,
        /// Gossip wave number (0-based).
        wave: u32,
    },
    /// Splice target → coordinator: wave done, launch the next one. (Under
    /// latency there is no shared round clock, so wave sequencing must be
    /// message-driven.)
    SpliceAck {
        /// Sequence number of the repair.
        repair: u64,
        /// Cloud under construction.
        color: CloudColor,
        /// The acknowledged wave.
        wave: u32,
    },
}

impl Msg {
    /// Labels of the per-kind message breakdown, indexed by
    /// [`Msg::kind_index`]. The executors install this pair as the engine's
    /// payload classifier (see `xheal_sim::NetworkEngine::set_classifier`),
    /// so communication complexity can be read per protocol phase.
    pub const KIND_LABELS: &'static [&'static str] =
        &["probe", "grant", "link", "unlink", "splice", "splice_ack"];

    /// Index of this variant in [`Msg::KIND_LABELS`].
    pub fn kind_index(&self) -> usize {
        match self {
            Msg::Probe { .. } => 0,
            Msg::Grant { .. } => 1,
            Msg::Link { .. } => 2,
            Msg::Unlink { .. } => 3,
            Msg::Splice { .. } => 4,
            Msg::SpliceAck { .. } => 5,
        }
    }

    /// The repair this message belongs to.
    pub fn repair(&self) -> u64 {
        match self {
            Msg::Probe { repair }
            | Msg::Grant { repair, .. }
            | Msg::Link { repair, .. }
            | Msg::Unlink { repair, .. }
            | Msg::Splice { repair, .. }
            | Msg::SpliceAck { repair, .. } => *repair,
        }
    }
}
