//! The recovery protocol's message vocabulary and per-deletion cost record.

use xheal_core::HealCase;
use xheal_graph::{CloudColor, NodeId};

/// Messages of the distributed recovery protocol (Section 5's LOCAL model:
/// unbounded payloads, one hop per synchronous round).
///
/// A repair runs in phases: the coordinator **probes** every affected node,
/// affected nodes **grant** their local cloud state back, the coordinator
/// computes the repair plan and disseminates **link**/**unlink** edge
/// instructions, and cloud construction finishes with O(log m) **splice**
/// gossip waves (the distributed Hamilton-cycle splice of the Law–Siu
/// expander).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Coordinator → participant: report your cloud memberships for this
    /// repair (keyed by the deletion's sequence number).
    Probe {
        /// Sequence number of the repair.
        repair: u64,
    },
    /// Participant → coordinator: local membership state (whether the node
    /// is free for bridge duty — the decision input of MakeSecondary).
    Grant {
        /// Sequence number of the repair.
        repair: u64,
        /// True when the sender has no secondary-cloud duty.
        free: bool,
    },
    /// Coordinator → edge endpoint: install a colored cloud edge to `other`.
    Link {
        /// Cloud color of the new edge.
        color: CloudColor,
        /// The other endpoint.
        other: NodeId,
    },
    /// Coordinator → edge endpoint: strip `color` from the edge to `other`.
    Unlink {
        /// Cloud color to strip.
        color: CloudColor,
        /// The other endpoint.
        other: NodeId,
    },
    /// Hamilton-cycle splice gossip while a cloud of `color` is under
    /// construction.
    Splice {
        /// Cloud under construction.
        color: CloudColor,
        /// Gossip wave number (0-based).
        wave: u32,
    },
}

/// Protocol cost of healing one deletion (the paper's success metrics 4
/// and 5: recovery time and communication complexity).
#[derive(Clone, Debug)]
pub struct RepairCost {
    /// Synchronous rounds the repair took.
    pub rounds: u64,
    /// Messages delivered during the repair.
    pub messages: u64,
    /// Black degree of the deleted node (Lemma 5's lower-bound unit).
    pub black_degree: usize,
    /// Total degree of the deleted node at deletion time.
    pub degree: usize,
    /// Which healing case of Algorithm 3.1 applied.
    pub case: HealCase,
    /// Whether the expensive combine operation ran.
    pub combined: bool,
}
