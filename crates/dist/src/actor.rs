//! Per-node repair state machines and the runtime that hosts them.
//!
//! Every processor of the network owns a [`RepairActor`]: a small state
//! machine advanced purely by message arrivals. A repair is *coordinated*
//! by its least-id live participant, whose actor walks the
//! probe → grant → link → splice phases; every other participant reacts
//! statelessly (grant on probe, ack on splice). All messages carry their
//! repair's sequence number, so any number of repairs can be in flight
//! concurrently — the actors demultiplex, and the runtime attributes
//! per-repair rounds and messages by tag.
//!
//! The [`ActorRuntime`] is the simulation harness around the actors: it
//! owns the [`NetworkEngine`], steps it, delivers mail to the actors, and
//! plays two oracle roles a deployment would implement differently:
//!
//! - **failure detection** — when a message is dropped (its recipient died
//!   mid-protocol, or a fault ate it), the runtime cancels the matching
//!   expectation at the repair's coordinator instead of letting it wait
//!   forever on a reply that cannot come (a real system would time out);
//! - **coordinator failover** — when a coordinator dies, its repair state
//!   moves to the next live participant, which finishes the remaining
//!   phases (participants hold the same plan after the grant exchange).
//!
//! The actors never touch the network graph: plans are applied to the
//! graph by the executor, which is what keeps the distributed topologies
//! bit-identical to the centralized ones.

use std::collections::BTreeSet;

use xheal_core::{HealCase, PlanAction, RepairCost};
use xheal_graph::{CloudColor, FxHashMap, NodeId};
use xheal_sim::{Counters, Envelope, NetworkEngine};

use crate::messages::Msg;

/// One planned edge instruction: both live endpoints must install/strip.
#[derive(Clone, Debug)]
struct LinkCmd {
    a: NodeId,
    b: NodeId,
    color: CloudColor,
    install: bool,
}

/// One cloud under construction: its splice gossip runs `waves` =
/// ⌈log₂ m⌉ acknowledged waves over the member rotation.
#[derive(Clone, Debug)]
struct SpliceScript {
    color: CloudColor,
    members: Vec<NodeId>,
    waves: u32,
}

/// Cost labels the executor attaches to a repair before kickoff.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CostMeta {
    pub case: HealCase,
    pub black_degree: usize,
    pub degree: usize,
    pub combined: bool,
}

/// The immutable script of one repair, distilled from its plan actions at
/// kickoff: who participates, which edge instructions to disseminate, and
/// which splice gossips to run.
#[derive(Clone, Debug)]
struct RepairScript {
    /// Announced victims of this repair — known-dead, never addressed.
    dead: Vec<NodeId>,
    /// Participants alive at kickoff, ascending; `[0]` coordinates.
    participants: Vec<NodeId>,
    links: Vec<LinkCmd>,
    splices: Vec<SpliceScript>,
    meta: CostMeta,
}

/// Mutable runtime bookkeeping of one in-flight repair.
#[derive(Clone, Debug)]
struct ScriptState {
    script: RepairScript,
    /// Current coordinator (changes on failover).
    coordinator: NodeId,
    /// Engine round at kickoff.
    start_round: u64,
    /// Messages of this repair currently in flight.
    in_flight: u64,
    /// Messages of this repair delivered so far.
    delivered: u64,
}

/// Progress of one splice gossip at the coordinator.
#[derive(Clone, Debug)]
struct TrackState {
    next_wave: u32,
    awaiting: Option<u32>,
    done: bool,
}

/// Coordinator-side state of one repair: the phase the state machine is in,
/// expressed as what it is still waiting for.
#[derive(Clone, Debug)]
struct Coordination {
    /// Participants still owing a Grant.
    pending_grants: BTreeSet<NodeId>,
    /// Per-splice progress, parallel to the script's `splices`.
    tracks: Vec<TrackState>,
    /// Link/unlink instructions (and wave 0) have been disseminated.
    links_sent: bool,
    /// All phases finished; the repair completes once its last message
    /// lands.
    done: bool,
}

/// Per-node protocol state: the repairs this node currently coordinates,
/// plus the pre-repair free-status snapshot it reports in Grants.
#[derive(Clone, Debug, Default)]
pub(crate) struct RepairActor {
    coordinating: FxHashMap<u64, Coordination>,
    /// What `Grant { free }` must answer, per repair: the node's bridge-duty
    /// status *before* the repair's decisions were made (snapshotted at
    /// kickoff — locally known state in a deployment).
    grant_free: FxHashMap<u64, bool>,
}

/// The simulation harness hosting the actors over a [`NetworkEngine`].
#[derive(Clone, Debug)]
pub(crate) struct ActorRuntime<N> {
    engine: N,
    actors: FxHashMap<NodeId, RepairActor>,
    active: FxHashMap<u64, ScriptState>,
    completed: Vec<RepairCost>,
    // Reusable per-round buffers: the delivery loop allocates nothing.
    buf_nodes: Vec<NodeId>,
    buf_mail: Vec<Envelope<Msg>>,
    buf_dropped: Vec<Envelope<Msg>>,
    buf_sends: Vec<(NodeId, NodeId, Msg)>,
}

impl<N: NetworkEngine<Msg>> ActorRuntime<N> {
    pub(crate) fn new(engine: N) -> Self {
        ActorRuntime {
            engine,
            actors: FxHashMap::default(),
            active: FxHashMap::default(),
            completed: Vec::new(),
            buf_nodes: Vec::new(),
            buf_mail: Vec::new(),
            buf_dropped: Vec::new(),
            buf_sends: Vec::new(),
        }
    }

    pub(crate) fn engine(&self) -> &N {
        &self.engine
    }

    pub(crate) fn engine_mut(&mut self) -> &mut N {
        &mut self.engine
    }

    pub(crate) fn counters(&self) -> Counters {
        self.engine.counters()
    }

    pub(crate) fn add_node(&mut self, v: NodeId) {
        self.engine.add_node(v);
    }

    /// Removes a processor: in-flight messages to it will drop, and any
    /// repair it coordinated fails over to its next live participant.
    pub(crate) fn remove_node(&mut self, v: NodeId) {
        self.engine.remove_node(v);
        let Some(actor) = self.actors.remove(&v) else {
            return;
        };
        for (repair, coordination) in actor.coordinating {
            self.fail_over(repair, coordination);
        }
    }

    /// Moves a dead coordinator's repair state to its successor — the next
    /// live participant — or finishes the repair if none is left.
    fn fail_over(&mut self, repair: u64, mut coordination: Coordination) {
        let successor = {
            let engine = &self.engine;
            let Some(st) = self.active.get(&repair) else {
                return;
            };
            st.script
                .participants
                .iter()
                .copied()
                .find(|&p| engine.contains(p))
        };
        match successor {
            None => self.finish(repair),
            Some(s) => {
                self.active
                    .get_mut(&repair)
                    .expect("checked above")
                    .coordinator = s;
                // The successor's own pending contributions are local now.
                coordination.pending_grants.remove(&s);
                let actor = self.actors.entry(s).or_default();
                actor.grant_free.remove(&repair);
                actor.coordinating.insert(repair, coordination);
                self.advance(repair);
            }
        }
    }

    /// Registers and kicks off one repair distilled from `actions`. The
    /// coordinator's probe wave is staged immediately; repairs with no live
    /// participants complete on the spot with zero cost.
    ///
    /// `dead` are the announced victims (sorted); `free_before` is the
    /// sorted pre-repair free-node snapshot each participant's Grant must
    /// report.
    pub(crate) fn begin_repair(
        &mut self,
        repair: u64,
        actions: &[PlanAction],
        dead: &[NodeId],
        free_before: &[NodeId],
        meta: CostMeta,
    ) {
        debug_assert!(dead.is_sorted() && free_before.is_sorted());
        let participant_set: BTreeSet<NodeId> = actions
            .iter()
            .flat_map(PlanAction::participants)
            .filter(|&p| dead.binary_search(&p).is_err() && self.engine.contains(p))
            .collect();
        let participants: Vec<NodeId> = participant_set.into_iter().collect();
        let Some(&coordinator) = participants.first() else {
            // Nothing to coordinate (degree <= 1 drop, or empty stage).
            self.completed.push(RepairCost {
                repair,
                rounds: 0,
                messages: 0,
                black_degree: meta.black_degree,
                degree: meta.degree,
                case: meta.case,
                combined: meta.combined,
            });
            return;
        };

        let mut links = Vec::new();
        let mut splices = Vec::new();
        for action in actions {
            let color = action.color();
            let delta = action.delta();
            for &(a, b) in &delta.removed {
                links.push(LinkCmd {
                    a,
                    b,
                    color,
                    install: false,
                });
            }
            for &(a, b) in &delta.added {
                links.push(LinkCmd {
                    a,
                    b,
                    color,
                    install: true,
                });
            }
            if let PlanAction::BuildCloud { color, members, .. } = action {
                if members.len() >= 2 {
                    let m = members.len();
                    splices.push(SpliceScript {
                        color: *color,
                        members: members.clone(),
                        // ceil(log2 m) gossip waves finish the splice.
                        waves: usize::BITS - (m - 1).leading_zeros(),
                    });
                }
            }
        }

        let mut pending_grants: BTreeSet<NodeId> = BTreeSet::new();
        for &p in &participants {
            if p == coordinator {
                continue;
            }
            let free = free_before.binary_search(&p).is_ok();
            self.actors
                .entry(p)
                .or_default()
                .grant_free
                .insert(repair, free);
            pending_grants.insert(p);
        }
        let tracks = vec![
            TrackState {
                next_wave: 0,
                awaiting: None,
                done: false,
            };
            splices.len()
        ];
        self.active.insert(
            repair,
            ScriptState {
                script: RepairScript {
                    dead: dead.to_vec(),
                    participants,
                    links,
                    splices,
                    meta,
                },
                coordinator,
                start_round: self.engine.counters().rounds,
                in_flight: 0,
                delivered: 0,
            },
        );
        for p in pending_grants.iter().copied().collect::<Vec<_>>() {
            self.post(coordinator, p, Msg::Probe { repair });
        }
        self.actors
            .entry(coordinator)
            .or_default()
            .coordinating
            .insert(
                repair,
                Coordination {
                    pending_grants,
                    tracks,
                    links_sent: false,
                    done: false,
                },
            );
        self.advance(repair);
        self.finalize_completed();
    }

    /// Runs every active repair to completion. If the engine goes quiet
    /// while repairs remain (every live participant of them died), the
    /// stuck repairs are closed out with the cost they accrued.
    pub(crate) fn run_active(&mut self) {
        self.finalize_completed();
        while !self.active.is_empty() {
            if !self.engine.has_pending() {
                let stuck: Vec<u64> = self.active.keys().copied().collect();
                for repair in stuck {
                    self.finish(repair);
                }
                break;
            }
            self.step_once();
        }
    }

    /// One engine round: step, deliver all mail to the actors, process
    /// drops, finalize completed repairs.
    pub(crate) fn step_once(&mut self) {
        self.engine.step();
        let mut nodes = std::mem::take(&mut self.buf_nodes);
        let mut mail = std::mem::take(&mut self.buf_mail);
        self.engine.nodes_with_mail_into(&mut nodes);
        for &v in &nodes {
            self.engine.drain_inbox_into(v, &mut mail);
            for env in mail.drain(..) {
                self.handle_delivery(env);
            }
        }
        self.buf_nodes = nodes;
        self.buf_mail = mail;
        self.process_drops();
        self.finalize_completed();
    }

    /// True when messages are staged or in flight.
    pub(crate) fn has_pending(&self) -> bool {
        self.engine.has_pending()
    }

    /// Hands over the costs of repairs finished since the last call,
    /// ascending by repair sequence.
    pub(crate) fn take_completed(&mut self) -> Vec<RepairCost> {
        let mut out = std::mem::take(&mut self.completed);
        out.sort_by_key(|c| c.repair);
        out
    }

    // ------------------------------------------------------------------
    // Message plumbing
    // ------------------------------------------------------------------

    /// Stages a protocol message, counting it against its repair.
    fn post(&mut self, from: NodeId, to: NodeId, msg: Msg) {
        if let Some(st) = self.active.get_mut(&msg.repair()) {
            st.in_flight += 1;
        }
        self.engine.send(from, to, msg);
    }

    fn handle_delivery(&mut self, env: Envelope<Msg>) {
        let repair = env.payload.repair();
        let Some(st) = self.active.get_mut(&repair) else {
            return; // stale tail of an already-closed repair
        };
        st.in_flight -= 1;
        st.delivered += 1;
        match env.payload {
            Msg::Probe { repair } => {
                let free = self
                    .actors
                    .entry(env.to)
                    .or_default()
                    .grant_free
                    .remove(&repair)
                    .unwrap_or(true);
                self.post(env.to, env.from, Msg::Grant { repair, free });
            }
            Msg::Grant { repair, .. } => self.grant_received(repair, env.from),
            // Edge instructions are local installs at the endpoint; the
            // executor applies the identical plan deltas to the graph.
            Msg::Link { .. } | Msg::Unlink { .. } => {}
            Msg::Splice {
                repair,
                color,
                wave,
            } => {
                self.post(
                    env.to,
                    env.from,
                    Msg::SpliceAck {
                        repair,
                        color,
                        wave,
                    },
                );
            }
            Msg::SpliceAck {
                repair,
                color,
                wave,
            } => self.ack_received(repair, color, wave),
        }
    }

    /// Cancels expectations on messages that will never arrive: a dropped
    /// probe or grant waives the grant, a dropped splice or ack waives the
    /// wave — the runtime's failure-detector oracle.
    fn process_drops(&mut self) {
        let mut dropped = std::mem::take(&mut self.buf_dropped);
        self.engine.drain_dropped_into(&mut dropped);
        for env in dropped.drain(..) {
            let repair = env.payload.repair();
            let Some(st) = self.active.get_mut(&repair) else {
                continue;
            };
            st.in_flight -= 1;
            match env.payload {
                Msg::Probe { repair } => self.grant_received(repair, env.to),
                Msg::Grant { repair, .. } => self.grant_received(repair, env.from),
                Msg::Splice {
                    repair,
                    color,
                    wave,
                }
                | Msg::SpliceAck {
                    repair,
                    color,
                    wave,
                } => self.ack_received(repair, color, wave),
                Msg::Link { .. } | Msg::Unlink { .. } => {}
            }
        }
        self.buf_dropped = dropped;
    }

    // ------------------------------------------------------------------
    // Coordinator transitions
    // ------------------------------------------------------------------

    /// A grant (or its waiver) arrived from `from`.
    fn grant_received(&mut self, repair: u64, from: NodeId) {
        let Some(st) = self.active.get(&repair) else {
            return;
        };
        let coordinator = st.coordinator;
        if let Some(c) = self
            .actors
            .get_mut(&coordinator)
            .and_then(|a| a.coordinating.get_mut(&repair))
        {
            c.pending_grants.remove(&from);
        }
        self.advance(repair);
    }

    /// A splice ack (or its waiver) for `(color, wave)` arrived.
    fn ack_received(&mut self, repair: u64, color: CloudColor, wave: u32) {
        let Some(st) = self.active.get(&repair) else {
            return;
        };
        let coordinator = st.coordinator;
        let Some(c) = self
            .actors
            .get_mut(&coordinator)
            .and_then(|a| a.coordinating.get_mut(&repair))
        else {
            return;
        };
        let Some(i) = st.script.splices.iter().position(|s| s.color == color) else {
            return;
        };
        let track = &mut c.tracks[i];
        if track.awaiting != Some(wave) {
            return; // stale or duplicate ack
        }
        track.awaiting = None;
        track.next_wave = wave + 1;
        if track.next_wave >= st.script.splices[i].waves {
            track.done = true;
        }
        self.advance(repair);
    }

    /// Drives the coordinator's state machine as far as current knowledge
    /// allows: disseminate once grants are complete, launch the next wave
    /// of any idle splice track, mark done when nothing is left.
    fn advance(&mut self, repair: u64) {
        let Some(st) = self.active.get(&repair) else {
            return;
        };
        let coordinator = st.coordinator;
        let Some(c) = self
            .actors
            .get(&coordinator)
            .and_then(|a| a.coordinating.get(&repair))
        else {
            return;
        };
        if !c.pending_grants.is_empty() || c.done {
            return;
        }

        let mut sends = std::mem::take(&mut self.buf_sends);
        sends.clear();
        // Re-borrow mutably now that the sends buffer is detached.
        let st = self.active.get(&repair).expect("checked above");
        let script = &st.script;
        let c = self
            .actors
            .get_mut(&coordinator)
            .and_then(|a| a.coordinating.get_mut(&repair))
            .expect("checked above");

        if !c.links_sent {
            c.links_sent = true;
            for cmd in &script.links {
                let msg = |other: NodeId| {
                    if cmd.install {
                        Msg::Link {
                            repair,
                            color: cmd.color,
                            other,
                        }
                    } else {
                        Msg::Unlink {
                            repair,
                            color: cmd.color,
                            other,
                        }
                    }
                };
                // Each live endpoint installs its side; the coordinator's
                // own side is local computation, announced victims are
                // known-dead and skipped. An *unannounced* casualty still
                // gets addressed — the engine drops the message and the
                // failure detector reacts, exactly like a real deployment.
                for (end, other) in [(cmd.a, cmd.b), (cmd.b, cmd.a)] {
                    if end != coordinator && script.dead.binary_search(&end).is_err() {
                        sends.push((coordinator, end, msg(other)));
                    }
                }
            }
        }
        // Launch the next wave of every idle, unfinished track.
        for (i, track) in c.tracks.iter_mut().enumerate() {
            if track.done || track.awaiting.is_some() {
                continue;
            }
            let sp = &script.splices[i];
            let eligible: Vec<NodeId> = sp
                .members
                .iter()
                .copied()
                .filter(|&u| u != coordinator && script.dead.binary_search(&u).is_err())
                .collect();
            if eligible.is_empty() {
                // The whole splice is local computation at the coordinator.
                track.done = true;
                continue;
            }
            let wave = track.next_wave;
            let target = eligible[wave as usize % eligible.len()];
            track.awaiting = Some(wave);
            sends.push((
                coordinator,
                target,
                Msg::Splice {
                    repair,
                    color: sp.color,
                    wave,
                },
            ));
        }
        if c.tracks.iter().all(|t| t.done) {
            c.done = true;
        }
        for (from, to, msg) in sends.drain(..) {
            self.post(from, to, msg);
        }
        self.buf_sends = sends;
    }

    // ------------------------------------------------------------------
    // Completion
    // ------------------------------------------------------------------

    /// Closes every repair whose coordinator is done and whose last message
    /// has landed.
    fn finalize_completed(&mut self) {
        let ready: Vec<u64> = self
            .active
            .iter()
            .filter(|(repair, st)| {
                st.in_flight == 0
                    && self
                        .actors
                        .get(&st.coordinator)
                        .and_then(|a| a.coordinating.get(repair))
                        .is_some_and(|c| c.done)
            })
            .map(|(&repair, _)| repair)
            .collect();
        for repair in ready {
            self.finish(repair);
        }
    }

    /// Records the repair's cost and clears its protocol state.
    fn finish(&mut self, repair: u64) {
        let Some(st) = self.active.remove(&repair) else {
            return;
        };
        if let Some(actor) = self.actors.get_mut(&st.coordinator) {
            actor.coordinating.remove(&repair);
        }
        for &p in &st.script.participants {
            if let Some(actor) = self.actors.get_mut(&p) {
                actor.grant_free.remove(&repair);
            }
        }
        let meta = st.script.meta;
        self.completed.push(RepairCost {
            repair,
            rounds: self.engine.counters().rounds - st.start_round,
            messages: st.delivered,
            black_degree: meta.black_degree,
            degree: meta.degree,
            case: meta.case,
            combined: meta.combined,
        });
    }
}
