//! A peer-to-peer overlay under sustained churn (the paper's motivating
//! scenario — Skype-style P2P networks), comparing Xheal against the
//! tree-style healers over time.
//!
//! Run with `cargo run -p xheal-examples --bin p2p_churn`.

use rand::{rngs::StdRng, SeedableRng};
use xheal_baselines::{BinaryTreeHeal, CycleHeal};
use xheal_core::{HealingEngine, Xheal, XhealConfig};
use xheal_examples::{banner, fmt};
use xheal_graph::generators;
use xheal_spectral::normalized_algebraic_connectivity;
use xheal_workload::{replay, run, RandomChurn};

fn main() {
    banner("p2p overlay under churn: spectral health over time");
    let n = 200usize;
    let mut rng = StdRng::seed_from_u64(99);
    // Overlay bootstrap: a 6-regular random graph (typical DHT-ish overlay).
    let g0 = generators::random_regular(n, 6, &mut rng);

    // Record one churn trace with Xheal, then replay it on the baselines so
    // every strategy faces the identical adversary.
    let mut xheal = Xheal::new(&g0, XhealConfig::new(6).with_seed(5));
    let mut adversary = RandomChurn::new(0.35, 6, n / 3, &g0);

    println!(
        "{:<8}{:>12}{:>16}{:>16}",
        "epoch", "peers", "xheal lambda", "(churn events)"
    );
    let epochs = 8usize;
    let events_per_epoch = 50usize;
    let mut all_events = Vec::new();
    for epoch in 0..epochs {
        let summary = run(&mut xheal, &mut adversary, events_per_epoch, epoch as u64);
        all_events.extend(summary.events);
        let lambda = normalized_algebraic_connectivity(xheal.graph());
        println!(
            "{:<8}{:>12}{:>16}{:>16}",
            epoch,
            xheal.graph().node_count(),
            fmt(lambda),
            events_per_epoch
        );
    }

    banner("final comparison on the identical event trace");
    let mut cycle = CycleHeal::new(&g0);
    let mut tree = BinaryTreeHeal::new(&g0);
    replay(&mut cycle, &all_events);
    replay(&mut tree, &all_events);

    println!(
        "{:<20}{:>12}{:>14}{:>12}",
        "healer", "peers", "lambda_norm", "connected"
    );
    for h in [&xheal as &dyn HealingEngine, &cycle, &tree] {
        println!(
            "{:<20}{:>12}{:>14}{:>12}",
            h.name(),
            h.graph().node_count(),
            fmt(normalized_algebraic_connectivity(h.graph())),
            xheal_graph::components::is_connected(h.graph())
        );
    }
    println!();
    println!(
        "xheal keeps the overlay's spectral gap (fast lookups / gossip) while the \
         tree patch degrades it — Corollary 1 of the paper in action."
    );
}
