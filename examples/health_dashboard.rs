//! A live health dashboard riding the monitoring subsystem: an
//! [`xheal_monitor::Monitor`] subscribed to the healing delta stream keeps
//! every invariant metric incrementally (no per-query graph rebuild) while
//! a churn run streams [`HealthEvent`] alerts as the configured budgets
//! are crossed and recovered.
//!
//! Run with `cargo run -p xheal-examples --example health_dashboard`.

use std::cell::RefCell;
use std::rc::Rc;

use rand::{rngs::StdRng, SeedableRng};
use xheal_core::Xheal;
use xheal_examples::{banner, describe, fmt};
use xheal_graph::generators;
use xheal_monitor::{HealthPolicy, Monitor, MonitorConfig, MonitorHook};
use xheal_workload::{run_observed, RandomChurn, Severity};

fn main() {
    banner("health dashboard: live invariant monitoring off the delta stream");
    let mut rng = StdRng::seed_from_u64(0xDA5B);
    let g0 = generators::random_regular(96, 6, &mut rng);
    describe("initial overlay", &g0);

    // Budgets for the Theorem 2 invariant family. The degree budget is
    // deliberately tight so the dashboard has something to show, and the
    // warn edges put a hysteresis band inside each budget: one Warning on
    // the way in, no Critical/Info flapping around the breach limit.
    let config = MonitorConfig {
        policy: HealthPolicy {
            max_degree_increase: Some(3.0),
            warn_degree_increase: Some(2.5),
            min_spectral_gap: Some(0.02),
            warn_spectral_gap: Some(0.03),
            min_expansion: Some(0.05),
            warn_expansion: Some(0.07),
            max_components: Some(1),
        },
        track_lambda3: true,
        ..MonitorConfig::default()
    };
    let monitor = Rc::new(RefCell::new(Monitor::new(&g0, config)));
    let mut net = Xheal::builder()
        .kappa(4)
        .seed(23)
        .sink(Box::new(Rc::clone(&monitor)))
        .build(&g0);

    // Heavy random churn, observed: the hook checkpoints the expensive
    // metrics every 12 events and records alerts into the summary.
    let mut adversary = RandomChurn::new(0.6, 2, 3, &g0);
    let mut hook = MonitorHook::new(Rc::clone(&monitor), 12);
    let summary = run_observed(&mut net, &mut adversary, 120, 0x0DD5, &mut hook);

    banner("alert stream");
    if summary.health.is_empty() {
        println!("(no budget crossed — every invariant held)");
    }
    for note in &summary.health {
        let tag = match note.severity {
            Severity::Critical => "ALERT",
            Severity::Warning => "warn ",
            Severity::Info => "ok   ",
        };
        println!("step {:>4}  {tag}  {}", note.step, note.message);
    }

    banner("final checkpoint (all metrics off the incremental CSR)");
    let mut m = monitor.borrow_mut();
    let report = m.checkpoint();
    println!(
        "generation {} — {} nodes, {} edges after {} insertions / {} deletions",
        report.generation, report.nodes, report.edges, summary.insertions, summary.deletions
    );
    println!(
        "degree: max {} (mean {}), black max {}, degree-increase vs G' {}",
        report.max_degree,
        fmt(report.mean_degree),
        report.max_black_degree,
        fmt(report.degree_increase)
    );
    println!(
        "components {}   spectral gap {} ({} warm restarts)   lambda3 {}   expansion {}   stretch {}",
        report.components,
        fmt(report.spectral_gap.lambda),
        report.spectral_gap.restarts,
        report.lambda3.map_or("n/a".into(), fmt),
        report.expansion.map_or("n/a".into(), fmt),
        report.stretch.map_or("n/a".into(), fmt),
    );
    println!(
        "csr: {} tombstones, {} compactions, {} deltas ingested",
        m.csr().tombstones(),
        m.csr().compactions(),
        report.generation
    );

    // The end-to-end consistency proof: the incrementally patched CSR is
    // the fresh rebuild, field for field.
    let inc = m.csr().snapshot();
    let fresh = net.graph().csr_view();
    assert_eq!(inc.nodes(), fresh.nodes());
    assert_eq!(inc.offsets(), fresh.offsets());
    assert_eq!(inc.neighbors_flat(), fresh.neighbors_flat());
    assert_eq!(report.components, 1, "healed network stays connected");
    println!("\nincremental CSR == Graph::csr_view(): the stream is complete.");
}
