//! A wireless mesh (grid) network attacked at its articulation points —
//! the omniscient adversary's cut-vertex hunt — comparing reachability and
//! stretch across healers.
//!
//! Run with `cargo run -p xheal-examples --bin wireless_mesh`.

use xheal_baselines::{CycleHeal, NoHeal};
use xheal_core::{HealingEngine, Xheal, XhealConfig};
use xheal_examples::{banner, describe, fmt};
use xheal_graph::{components, generators};
use xheal_metrics::stretch;
use xheal_workload::{run, DeleteOnly, Targeting};

fn main() {
    banner("wireless mesh: articulation-point attack");
    let g0 = generators::grid(12, 10);
    describe("12x10 mesh", &g0);

    let deletions = 45usize;
    let keep = g0.node_count() - deletions;
    println!(
        "\nadversary: delete {} nodes, always hitting a cut vertex when one exists\n",
        deletions
    );

    println!(
        "{:<20}{:>10}{:>14}{:>12}{:>14}",
        "healer", "nodes", "largest comp", "stretch", "connected"
    );
    let healers: Vec<Box<dyn HealingEngine>> = vec![
        Box::new(Xheal::new(&g0, XhealConfig::new(4).with_seed(3))),
        Box::new(CycleHeal::new(&g0)),
        Box::new(NoHeal::new(&g0)),
    ];
    for mut healer in healers {
        let mut adversary = DeleteOnly::new(Targeting::Articulation, keep);
        let summary = run(healer.as_mut(), &mut adversary, deletions, 1);
        let s = stretch(healer.graph(), &summary.gprime, 130, 8).unwrap_or(f64::INFINITY);
        println!(
            "{:<20}{:>10}{:>14}{:>12}{:>14}",
            healer.name(),
            healer.graph().node_count(),
            components::largest_component_size(healer.graph()),
            fmt(s),
            components::is_connected(healer.graph())
        );
    }
    println!();
    println!(
        "no-heal shatters the mesh; xheal keeps every surviving radio reachable \
         with logarithmic detours (Thm 2.2)."
    );
}
