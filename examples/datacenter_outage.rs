//! A datacenter rack dies all at once — under real message latency.
//!
//! The overlay is a 6-regular random graph of 180 "servers" grouped into
//! racks of 6 consecutive ids. The adversary yanks whole racks (one
//! [`DistXheal::delete_batch`] per outage — every victim is gone before any
//! repair runs) while the actor protocol's messages crawl through an
//! [`AsyncNetwork`] with seeded per-link latency and jitter. After each
//! outage the example prints the per-repair [`RepairCost`] of every
//! concurrent protocol stage, then checks connectivity and the
//! latency-scaled O(log n) recovery budget.
//!
//! Run with `cargo run -p xheal-examples --example datacenter_outage`.

use rand::{rngs::StdRng, SeedableRng};
use xheal_core::XhealConfig;
use xheal_dist::{DistXheal, Msg, RepairCost};
use xheal_examples::{banner, describe, fmt};
use xheal_graph::{components, generators, NodeId};
use xheal_sim::{AsyncConfig, AsyncNetwork};

const SERVERS: usize = 180;
const RACK: usize = 6;

fn main() {
    banner("datacenter outage: burst rack deletions under message latency");
    let mut rng = StdRng::seed_from_u64(0xDC);
    let g0 = generators::random_regular(SERVERS, 6, &mut rng);
    describe("initial overlay (180 servers, 30 racks of 6)", &g0);

    let latency = AsyncConfig::uniform(1, 3, 42).with_jitter(1);
    let worst = latency.worst_case_delay();
    println!(
        "\nlink model: per-link base latency 1..=3 rounds, jitter +0..=1 \
         (worst-case delay L = {worst})"
    );
    let mut net = DistXheal::with_engine(
        &g0,
        XhealConfig::new(4).with_seed(7),
        AsyncNetwork::<Msg>::new(latency),
    );

    let log2n = (SERVERS as f64).log2();
    let budget = 4.0 * worst as f64 * log2n;
    let mut cost_cursor = 0usize;
    let mut worst_recovery = 0u64;

    for (outage, rack_no) in [4usize, 11, 19, 26].into_iter().enumerate() {
        let rack: Vec<NodeId> = (0..RACK)
            .map(|i| NodeId::new((rack_no * RACK + i) as u64))
            .filter(|&v| net.graph().contains_node(v))
            .collect();
        let before = net.counters();
        let report = net.delete_batch(&rack).unwrap();
        let spent = net.counters().since(before);

        println!(
            "\noutage #{}: rack {rack_no} ({} servers) pulled — {} dead component(s), \
             {} secondaries built, {} combine(s); burst healed in {} wall rounds",
            outage + 1,
            rack.len(),
            report.components,
            report.secondaries_built,
            report.combines,
            spent.rounds
        );
        println!(
            "  {:<9}{:>8}{:>10}{:>12}{:>14}",
            "repair#", "victims", "boundary", "rounds", "messages"
        );
        let new_costs: &[RepairCost] = &net.costs()[cost_cursor..];
        for c in new_costs {
            worst_recovery = worst_recovery.max(c.rounds);
            println!(
                "  {:<9}{:>8}{:>10}{:>12}{:>14}",
                c.repair, c.degree, c.black_degree, c.rounds, c.messages
            );
        }
        cost_cursor = net.costs().len();
        assert!(
            components::is_connected(net.graph()),
            "overlay disconnected after outage"
        );
    }

    banner("recovery-budget check");
    println!("servers left:              {}", net.graph().node_count());
    println!("repair protocols executed: {}", net.costs().len());
    println!(
        "worst per-repair recovery: {worst_recovery} rounds  \
         (budget 4*L*log2(n) = {})",
        fmt(budget)
    );
    println!(
        "engine totals: {} rounds, {} messages, {} dropped",
        net.counters().rounds,
        net.counters().messages,
        net.counters().dropped
    );
    let (labels, counts) = net.message_breakdown();
    let total_sent: u64 = counts.iter().sum();
    println!("sent by protocol phase:");
    for (label, count) in labels.iter().zip(counts) {
        println!(
            "  {label:<11}{count:>8}  ({:5.1}%)",
            100.0 * *count as f64 / total_sent as f64
        );
    }
    assert!(
        total_sent >= net.counters().messages,
        "per-kind tally lost sends"
    );
    assert!((worst_recovery as f64) <= budget, "recovery budget blown");
    assert!(components::is_connected(net.graph()));
    println!("\nall outages healed: overlay connected, recovery within budget");
}
