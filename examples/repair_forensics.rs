//! Repair forensics: one tracer attached across the planner, the protocol
//! runtime, the transport, and the monitor; a seeded outage schedule healed
//! under it; then single repairs replayed from the ledger — which planner
//! case fired, how many protocol messages it cost, what the monitor saw —
//! and the whole run exported as chrome://tracing JSON.
//!
//! Run with `cargo run -p xheal-examples --example repair_forensics`.

use std::cell::RefCell;
use std::rc::Rc;

use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::XhealConfig;
use xheal_dist::DistXheal;
use xheal_examples::{banner, describe};
use xheal_graph::{generators, NodeId};
use xheal_monitor::{HealthPolicy, Monitor, MonitorConfig};
use xheal_trace::{hook, Layer, RepairRecord, Tracer};

/// Human name for the `plan.case` instant's argument (the planner's
/// case code, in declaration order of `xheal_core::HealCase`).
fn case_name(code: u64) -> &'static str {
    match code {
        0 => "Dropped",
        1 => "AllBlack",
        2 => "PrimaryOnly",
        3 => "Bridge",
        4 => "Batch",
        _ => "?",
    }
}

/// The planner case a repair record carries, if its `plan.case` instant
/// survived ring wraparound.
fn recorded_case(r: &RepairRecord) -> Option<u64> {
    r.entries
        .iter()
        .find(|e| e.name == "plan.case" && e.dur_nanos.is_none())
        .map(|e| e.arg)
}

fn main() {
    banner("repair forensics: one ledger entry per repair");
    let n = 128usize;
    let g0 = generators::ring_with_chords(n);
    describe("initial overlay", &g0);

    // One tracer observes every layer at once. A tight degree budget makes
    // the monitor's band machine move, so health transitions land too.
    let tracer = Tracer::shared(1 << 14);
    let mut net = DistXheal::new(&g0, XhealConfig::new(4).with_seed(7));
    net.set_tracer(Some(tracer.clone()));
    let monitor = Rc::new(RefCell::new(Monitor::new(
        net.graph(),
        MonitorConfig {
            policy: HealthPolicy {
                max_degree_increase: Some(2.0),
                warn_degree_increase: Some(1.5),
                ..HealthPolicy::default()
            },
            ..MonitorConfig::default()
        },
    )));
    monitor.borrow_mut().set_tracer(Some(tracer.clone()));
    net.subscribe(Box::new(Rc::clone(&monitor)));

    // The schedule: 14 single deletions with periodic monitor checkpoints,
    // then one clustered six-victim batch.
    let mut rng = StdRng::seed_from_u64(7);
    let mut live: Vec<NodeId> = g0.nodes().collect();
    for i in 0..14 {
        let v = live.swap_remove(rng.random_range(0..live.len()));
        net.delete(v).expect("victim is live");
        if i % 5 == 4 {
            monitor.borrow_mut().checkpoint();
        }
    }
    let victims: Vec<NodeId> = (0..6)
        .map(|_| live.swap_remove(rng.random_range(0..live.len())))
        .collect();
    net.delete_batch(&victims).expect("victims are live");
    monitor.borrow_mut().checkpoint();

    let t = hook::lock(&tracer);

    banner("per-repair ledger");
    let ledger = t.forensics();
    println!(
        "{:<8}{:>9}{:>14}{:>11}{:>10}",
        "repair", "entries", "case", "messages", "planner"
    );
    for r in &ledger.repairs {
        println!(
            "{:<8}{:>9}{:>14}{:>11}{:>10}",
            format!("#{}", r.repair),
            r.entries.len(),
            recorded_case(r).map_or("-", case_name),
            r.instant_arg_sum("proto.done"),
            r.layer_count(Layer::Planner),
        );
    }

    // Drill into the most message-expensive repair: its full span tree, the
    // planner's decisions and the protocol's completion side by side.
    let worst = ledger
        .repairs
        .iter()
        .max_by_key(|r| r.instant_arg_sum("proto.done"))
        .expect("schedule healed at least one repair");
    banner(&format!(
        "most expensive repair: #{} ({} protocol messages)",
        worst.repair,
        worst.instant_arg_sum("proto.done")
    ));
    for e in &worst.entries {
        let indent = "  ".repeat(e.depth as usize);
        match e.dur_nanos {
            Some(d) => println!(
                "{indent}{} {} (arg {}) {:.1} us",
                e.layer.label(),
                e.name,
                e.arg,
                d as f64 / 1e3
            ),
            None => println!("{indent}{} {} (arg {})", e.layer.label(), e.name, e.arg),
        }
    }

    banner("phase summary (whole run)");
    print!("{}", t.phase_summary());

    let path = std::env::temp_dir().join("repair_forensics_trace.json");
    std::fs::write(&path, t.chrome_trace_json()).expect("write chrome trace");
    println!(
        "\nchrome trace: {} ({} events; load in chrome://tracing or Perfetto)",
        path.display(),
        t.len()
    );

    // The ledger is an API, not just a report: cross-check it against the
    // engine's own cost accounting.
    drop(t);
    let traced: u64 = {
        let t = hook::lock(&tracer);
        t.forensics()
            .repairs
            .iter()
            .map(|r| r.instant_arg_sum("proto.done"))
            .sum()
    };
    assert_eq!(
        traced,
        net.counters().messages,
        "ledger message totals must match engine counters"
    );
    println!("ledger cross-check: {traced} messages match engine counters");
}
