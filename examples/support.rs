//! Shared helpers for the example binaries.

#![forbid(unsafe_code)]

use xheal_graph::Graph;

/// Formats a float compactly for example output.
pub fn fmt(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// One-line topology summary.
pub fn describe(label: &str, g: &Graph) {
    let connected = xheal_graph::components::is_connected(g);
    println!(
        "{label}: {} nodes, {} edges, {}",
        g.node_count(),
        g.edge_count(),
        if connected {
            "connected"
        } else {
            "DISCONNECTED"
        }
    );
}
