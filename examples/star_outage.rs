//! The Skype-outage scenario from the paper's introduction: a hub-and-spoke
//! (supernode) topology loses its hubs. Tree-style repairs collapse the
//! network's expansion to O(1/n); Xheal's expander clouds keep it constant.
//!
//! Run with `cargo run -p xheal-examples --bin star_outage`.

use xheal_baselines::{BinaryTreeHeal, CycleHeal, StarHeal};
use xheal_core::{Event, HealingEngine, Xheal, XhealConfig};
use xheal_examples::{banner, fmt};
use xheal_graph::{generators, NodeId};
use xheal_metrics::expansion_report;

fn main() {
    banner("supernode outage: the paper's star example (Related Work, Figure 4)");
    let n = 401usize; // one hub + 400 clients
    println!("topology: one supernode serving {} clients\n", n - 1);

    println!(
        "{:<20}{:>14}{:>14}{:>14}{:>12}",
        "healer", "lambda_norm", "sweep h", "max degree", "diameter"
    );
    let g0 = generators::star(n);
    let healers: Vec<Box<dyn HealingEngine>> = vec![
        Box::new(Xheal::new(&g0, XhealConfig::new(6).with_seed(11))),
        Box::new(BinaryTreeHeal::new(&g0)),
        Box::new(CycleHeal::new(&g0)),
        Box::new(StarHeal::new(&g0)),
    ];
    for mut healer in healers {
        healer
            .apply(&Event::Delete {
                node: NodeId::new(0),
            })
            .expect("hub exists");
        let rep = expansion_report(healer.graph());
        let max_deg = healer
            .graph()
            .node_vec()
            .iter()
            .map(|&v| healer.graph().degree(v).unwrap())
            .max()
            .unwrap_or(0);
        let diam = xheal_graph::traversal::diameter(healer.graph()).unwrap_or(0);
        println!(
            "{:<20}{:>14}{:>14}{:>14}{:>12}",
            healer.name(),
            fmt(rep.lambda_norm),
            fmt(rep.sweep_h.unwrap_or(f64::NAN)),
            max_deg,
            diam
        );
    }
    println!();
    println!(
        "binary-tree repair leaves a lambda ~ 1/n bottleneck (one bad cut at the \
         root); star repair re-creates the single point of failure with degree \
         {}; xheal's kappa-regular cloud keeps lambda constant at degree 6.",
        n - 2
    );
}
