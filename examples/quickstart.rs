//! Quickstart: wrap a network in Xheal, let an adversary attack it, and
//! watch the success metrics hold.
//!
//! Run with `cargo run -p xheal-examples --bin quickstart`.

use rand::{rngs::StdRng, SeedableRng};
use xheal_core::{Xheal, XhealConfig};
use xheal_examples::{banner, describe, fmt};
use xheal_graph::generators;
use xheal_metrics::{degree_increase, expansion_report, stretch};
use xheal_workload::{run, RandomChurn};

fn main() {
    banner("quickstart: a self-healing peer-to-peer overlay");

    // 1. Start from a sparse random network of 100 peers.
    let mut rng = StdRng::seed_from_u64(2026);
    let g0 = generators::connected_erdos_renyi(100, 0.05, &mut rng);
    describe("initial network", &g0);

    // 2. Wrap it in Xheal with kappa = 6 expander clouds.
    let mut healer = Xheal::new(&g0, XhealConfig::new(6).with_seed(1));

    // 3. Adversarial churn: 150 events, 30% insertions, down to 40 peers min.
    let mut adversary = RandomChurn::new(0.3, 4, 40, &g0);
    let summary = run(&mut healer, &mut adversary, 150, 7);
    println!(
        "applied {} insertions and {} deletions",
        summary.insertions, summary.deletions
    );
    describe("healed network G_t", healer.graph());
    describe("reference network G'_t (insertions only)", &summary.gprime);

    // 4. The paper's success metrics.
    banner("success metrics (Figure 1 of the paper)");
    println!(
        "degree increase (metric 1):  {}  [Thm 2.1 bound: kappa*d' + 2k]",
        fmt(degree_increase(healer.graph(), &summary.gprime))
    );
    let s = stretch(healer.graph(), &summary.gprime, 150, 8).unwrap_or(f64::INFINITY);
    println!(
        "network stretch (metric 3):  {}  [Thm 2.2 bound: O(log n)]",
        fmt(s)
    );
    let rep = expansion_report(healer.graph());
    println!(
        "expansion (metric 2): lambda = {}, lambda_norm = {}, sweep h <= {}",
        fmt(rep.lambda),
        fmt(rep.lambda_norm),
        fmt(rep.sweep_h.unwrap_or(f64::NAN)),
    );

    banner("healing internals");
    let st = healer.stats();
    println!(
        "secondary clouds built: {}, combines: {}, free-node shares: {}",
        st.secondaries_built, st.combines, st.shares
    );
    println!(
        "colored edges added/removed: {}/{}, clouds live: {}",
        st.edges_added,
        st.edges_removed,
        healer.cloud_count()
    );
    println!(
        "amortized Lemma 5 lower bound A(p): {}",
        fmt(st.amortized_lower_bound())
    );
}
