//! Ten engines, one schedule set, one scoreboard.
//!
//! Drives every engine in `xheal_workload::standard_registry` — Xheal in
//! all four flavors, DEX, and the five baselines — through the three
//! standard seeded adversary schedules, scoring each run live with a
//! subscribed `xheal_monitor::Monitor`, and prints the trade-off matrix.
//! This is the example-sized version of the `arena` bench binary that
//! produces `BENCH_arena.json`.
//!
//! ```sh
//! cargo run --example engine_arena
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use xheal_core::{Event, HealingEngine, Outcome};
use xheal_graph::{generators, Graph};
use xheal_monitor::{Monitor, MonitorConfig, MonitorHook};
use xheal_workload::{
    run_arena, standard_registry, ArenaQuality, ArenaSchedule, ArenaScorer, HealthNote,
    RunObserver, RunSummary, Severity,
};

/// Monitor-backed scorer: one fresh monitor per cell, fed by the engine's
/// delta subscription, checkpointed periodically and once at finish.
struct MonitorScorer {
    monitor: Rc<RefCell<Monitor>>,
    hook: MonitorHook,
}

impl MonitorScorer {
    fn new(initial: &Graph) -> Self {
        let config = MonitorConfig {
            track_lambda3: true,
            ..MonitorConfig::default()
        };
        let monitor = Rc::new(RefCell::new(Monitor::new(initial, config)));
        let hook = MonitorHook::new(Rc::clone(&monitor), 16);
        MonitorScorer { monitor, hook }
    }
}

impl RunObserver for MonitorScorer {
    fn on_event(&mut self, step: usize, event: &Event, outcome: &Outcome, graph: &Graph) {
        self.hook.on_event(step, event, outcome, graph);
    }

    fn drain_notes(&mut self) -> Vec<HealthNote> {
        self.hook.drain_notes()
    }
}

impl ArenaScorer for MonitorScorer {
    fn attach(&mut self, engine: &mut dyn HealingEngine) {
        engine.subscribe(Box::new(Rc::clone(&self.monitor)));
    }

    fn finish(&mut self, _graph: &Graph, summary: &RunSummary) -> ArenaQuality {
        let mut m = self.monitor.borrow_mut();
        let report = m.checkpoint();
        // Engines that rebuild their topology from membership alone (DEX)
        // leave the black reference shadow empty; their reference-relative
        // metrics are meaningless, so report null instead of zero.
        let has_reference = m.gprime().edge_count() > 0;
        ArenaQuality {
            max_degree: report.max_degree,
            degree_increase: has_reference.then_some(report.degree_increase),
            stretch: report.stretch.filter(|_| has_reference),
            expansion: report.expansion,
            spectral_gap: Some(report.spectral_gap.lambda),
            lambda3: report.lambda3,
            components: report.components,
            warn_notes: summary
                .health
                .iter()
                .filter(|n| n.severity == Severity::Warning)
                .count(),
            critical_notes: summary
                .health
                .iter()
                .filter(|n| n.severity == Severity::Critical)
                .count(),
        }
    }
}

fn main() {
    let n0 = 96;
    let steps = 60;
    let g0 = generators::ring_with_chords(n0);
    let registry = standard_registry(4);
    let schedules = ArenaSchedule::standard(steps);

    println!(
        "engine arena: {} engines x {} schedules",
        registry.len(),
        schedules.len()
    );
    println!("n0 = {n0}, {steps} adversary events per schedule, kappa = 4\n");

    let matrix = run_arena(&registry, &schedules, &g0, 0xA5EED, |_, _, g| {
        MonitorScorer::new(g)
    });
    assert!(matrix.is_complete());

    for sched in matrix.schedules() {
        println!("=== {sched} ===");
        println!(
            "{:<18} {:>8} {:>8} {:>6} {:>8} {:>8} {:>8} {:>8} {:>5} {:>5}",
            "engine",
            "messages",
            "edge-ops",
            "maxdeg",
            "deg-inc",
            "stretch",
            "gap",
            "lambda3",
            "comps",
            "crit"
        );
        for engine in matrix.engines() {
            let c = matrix.cell(engine, sched).expect("complete");
            let q = &c.quality;
            let opt = |v: Option<f64>| match v {
                Some(x) if x.is_finite() => format!("{x:.3}"),
                _ => "n/a".to_string(),
            };
            println!(
                "{:<18} {:>8} {:>8} {:>6} {:>8} {:>8} {:>8} {:>8} {:>5} {:>5}",
                c.engine,
                c.messages,
                c.edges_added + c.edges_removed,
                q.max_degree,
                opt(q.degree_increase),
                opt(q.stretch),
                opt(q.spectral_gap),
                opt(q.lambda3),
                q.components,
                q.critical_notes,
            );
        }
        println!();
    }

    println!(
        "full-size matrix: cargo run --release -p xheal-bench --bin arena  \
         (writes BENCH_arena.json)"
    );
}
