//! Round-by-round view of the distributed recovery protocol (Section 5):
//! runs the LOCAL-model implementation on a small network and prints each
//! deletion's protocol cost, then checks Theorem 5's budgets.
//!
//! Run with `cargo run -p xheal-examples --bin distributed_trace`.

use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::XhealConfig;
use xheal_dist::DistXheal;
use xheal_examples::{banner, describe, fmt};
use xheal_graph::generators;

fn main() {
    banner("distributed Xheal: per-deletion protocol costs");
    let n = 64usize;
    let kappa = 6usize;
    let mut rng = StdRng::seed_from_u64(123);
    let g0 = generators::random_regular(n, 6, &mut rng);
    describe("initial overlay", &g0);
    let mut net = DistXheal::new(&g0, XhealConfig::new(kappa).with_seed(77));

    println!(
        "\n{:<8}{:>10}{:>10}{:>10}{:>12}{:>10}",
        "del#", "victim", "deg(v)", "rounds", "messages", "case"
    );
    for i in 0..24 {
        let nodes = net.graph().node_vec();
        let victim = nodes[rng.random_range(0..nodes.len())];
        let deg = net.graph().degree(victim).unwrap();
        net.delete(victim).unwrap();
        let c = net.costs().last().unwrap();
        println!(
            "{:<8}{:>10}{:>10}{:>10}{:>12}{:>10}",
            i,
            victim.to_string(),
            deg,
            c.rounds,
            c.messages,
            format!("{:?}", c.case)
        );
    }

    banner("Theorem 5 check");
    let costs = net.costs();
    let p = costs.len() as f64;
    let a_p = costs.iter().map(|c| c.black_degree as f64).sum::<f64>() / p;
    let msgs = costs.iter().map(|c| c.messages as f64).sum::<f64>() / p;
    let rounds_max = costs.iter().map(|c| c.rounds).max().unwrap();
    let log2n = (n as f64).log2();
    println!("deletions healed:        {}", costs.len());
    println!(
        "max rounds per deletion: {rounds_max}  (log2 n = {})",
        fmt(log2n)
    );
    println!("mean messages:           {}", fmt(msgs));
    println!("Lemma 5 lower bound A(p): {}", fmt(a_p));
    println!(
        "amortized overhead msgs/(kappa*log2(n)*A(p)) = {}  [Thm 5: O(1)]",
        fmt(msgs / (kappa as f64 * log2n * a_p))
    );
    println!(
        "\nengine totals: {} rounds, {} messages, {} dropped (mid-protocol deaths)",
        net.counters().rounds,
        net.counters().messages,
        net.counters().dropped
    );
}
