//! A live topology monitor riding the subscription API: a custom
//! [`TopologySink`] keeps an edges-added/removed ledger while a churn
//! schedule runs through the unified [`HealingEngine`] interface, printing
//! per-event [`Outcome`] costs (including the distributed executor's
//! rounds/messages), with a [`DeltaMirror`] as the end-to-end consistency
//! proof that the delta stream is complete.
//!
//! This is exactly the consumption pattern of an incrementally-patched CSR
//! monitor or an external routing table: patch your own view from the
//! stream, never re-scan `graph()`.
//!
//! Run with `cargo run -p xheal-examples --example topology_monitor`.

use std::cell::RefCell;
use std::rc::Rc;

use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::{DeltaMirror, Event, HealingEngine, Outcome, TopologyDelta, TopologySink};
use xheal_dist::DistXheal;
use xheal_examples::{banner, describe};
use xheal_graph::{components, generators, NodeId};

/// A ledger sink: counts node/edge deltas, split by label kind.
#[derive(Debug, Default)]
struct Ledger {
    nodes_added: usize,
    nodes_removed: usize,
    black_added: usize,
    cloud_added: usize,
    cloud_removed: usize,
}

impl Ledger {
    fn snapshot(&self) -> (usize, usize) {
        (
            self.black_added + self.cloud_added,
            self.cloud_removed + self.nodes_removed,
        )
    }
}

impl TopologySink for Ledger {
    fn on_delta(&mut self, delta: &TopologyDelta) {
        match delta {
            TopologyDelta::NodeAdded(_) => self.nodes_added += 1,
            TopologyDelta::NodeRemoved(_) => self.nodes_removed += 1,
            TopologyDelta::EdgeAdded { color: None, .. } => self.black_added += 1,
            TopologyDelta::EdgeAdded { color: Some(_), .. } => self.cloud_added += 1,
            TopologyDelta::EdgeRemoved { .. } => self.cloud_removed += 1,
        }
    }
}

fn main() {
    banner("topology monitor: subscribing to the healing delta stream");
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let g0 = generators::random_regular(64, 6, &mut rng);
    describe("initial overlay", &g0);

    // Two subscribers: the printing ledger and the shadow-graph mirror.
    let ledger = Rc::new(RefCell::new(Ledger::default()));
    let mirror = Rc::new(RefCell::new(DeltaMirror::new(&g0)));
    let mut net = DistXheal::builder()
        .kappa(4)
        .seed(11)
        .sink(Box::new(Rc::clone(&ledger)))
        .sink(Box::new(Rc::clone(&mirror)))
        .build(&g0);

    // A hand-rolled churn schedule: deletions, an insertion, and one burst.
    let mut events: Vec<Event> = Vec::new();
    for i in 0..6u64 {
        events.push(Event::Delete {
            node: NodeId::new(i * 9),
        });
    }
    events.push(Event::Insert {
        node: NodeId::new(1000),
        neighbors: vec![NodeId::new(20), NodeId::new(33)],
    });
    events.push(Event::DeleteBatch {
        nodes: vec![NodeId::new(40), NodeId::new(41), NodeId::new(42)],
    });
    for _ in 0..4 {
        let nodes = net.graph().node_vec();
        events.push(Event::Delete {
            node: nodes[rng.random_range(0..nodes.len())],
        });
    }

    println!(
        "\n{:<26}{:>8}{:>8}{:>9}{:>9}{:>8}{:>10}",
        "event", "+edges", "-edges", "ledger+", "ledger-", "rounds", "messages"
    );
    for event in &events {
        let before = ledger.borrow().snapshot();
        let outcome = net.apply(event).expect("schedule is valid");
        let after = ledger.borrow().snapshot();
        let (rounds, messages) = outcome.cost().map_or((0, 0), |c| (c.rounds, c.messages));
        let label = match event {
            Event::Insert { node, .. } => format!("insert {node}"),
            Event::Delete { node } => format!("delete {node}"),
            Event::DeleteBatch { nodes } => format!("burst x{}", nodes.len()),
        };
        let case = match &outcome {
            Outcome::Inserted { .. } => "-".to_string(),
            Outcome::Healed { report, .. } => format!("{:?}", report.case),
            Outcome::Batch { report, .. } => format!("{} comps", report.components),
        };
        println!(
            "{:<26}{:>8}{:>8}{:>9}{:>9}{:>8}{:>10}",
            format!("{label} [{case}]"),
            outcome.edges_added(),
            outcome.edges_removed(),
            after.0 - before.0,
            after.1 - before.1,
            rounds,
            messages
        );
    }

    banner("ledger totals");
    let l = ledger.borrow();
    println!(
        "nodes: +{} / -{}   black edges: +{}   cloud edges: +{} / -{} strips",
        l.nodes_added, l.nodes_removed, l.black_added, l.cloud_added, l.cloud_removed
    );

    banner("consistency proof: shadow graph rebuilt purely from deltas");
    let mirrored = mirror.borrow();
    assert_eq!(
        net.graph(),
        mirrored.graph(),
        "mirror diverged from the engine"
    );
    describe("engine graph", net.graph());
    describe("mirror graph", mirrored.graph());
    assert!(components::is_connected(net.graph()));
    println!("bit-identical: every structural change reached the stream.");
}
