//! Shared helpers for the cross-crate integration tests.

#![forbid(unsafe_code)]

use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::{Healer, Xheal, XhealConfig};
use xheal_graph::{generators, Graph, NodeId};

/// A standard churn schedule: returns the healer after `steps` mixed events
/// and the insertion-only graph `G'`.
pub fn churned_xheal(
    start_n: usize,
    steps: usize,
    p_insert: f64,
    kappa: usize,
    seed: u64,
) -> (Xheal, Graph) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g0 = generators::connected_erdos_renyi(start_n, 0.1, &mut rng);
    let mut healer = Xheal::new(&g0, XhealConfig::new(kappa).with_seed(seed ^ 0xF00D));
    let mut gprime = g0.clone();
    let mut next = start_n as u64;
    for _ in 0..steps {
        let nodes = healer.graph().node_vec();
        if rng.random::<f64>() < p_insert || nodes.len() <= 4 {
            let mut nbrs = Vec::new();
            for _ in 0..rng.random_range(1..=3usize.min(nodes.len())) {
                let u = nodes[rng.random_range(0..nodes.len())];
                if !nbrs.contains(&u) {
                    nbrs.push(u);
                }
            }
            let v = NodeId::new(next);
            next += 1;
            healer.on_insert(v, &nbrs).unwrap();
            gprime.add_node(v).unwrap();
            for &u in &nbrs {
                let _ = gprime.add_black_edge(v, u);
            }
        } else {
            let victim = nodes[rng.random_range(0..nodes.len())];
            healer.on_delete(victim).unwrap();
        }
    }
    (healer, gprime)
}
