//! The subscription layer's consistency proof: replaying the
//! [`TopologyDelta`] stream into a [`DeltaMirror`] reproduces the engine's
//! graph exactly — after **every** event — under arbitrary mixed
//! insert/delete/batch churn, for the centralized executor, both
//! distributed engines, and the component-parallel executor.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::{DeltaMirror, Event, HealingEngine, Xheal, XhealConfig};
use xheal_dist::{DistXheal, Msg};
use xheal_graph::{generators, NodeId};
use xheal_sim::{AsyncConfig, AsyncNetwork};

/// Builds one engine of the given kind over `g0` with a [`DeltaMirror`]
/// subscribed, returning the engine and a handle on the mirror.
fn engine_with_mirror(
    kind: usize,
    g0: &xheal_graph::Graph,
    cfg: XhealConfig,
) -> (Box<dyn HealingEngine>, Rc<RefCell<DeltaMirror>>) {
    let mirror = Rc::new(RefCell::new(DeltaMirror::new(g0)));
    let sink = Box::new(Rc::clone(&mirror));
    let engine: Box<dyn HealingEngine> = match kind {
        0 => Box::new(Xheal::builder().config(cfg).sink(sink).build(g0)),
        1 => Box::new(DistXheal::builder().config(cfg).sink(sink).build(g0)),
        2 => Box::new(
            DistXheal::builder()
                .config(cfg)
                .sink(sink)
                // Real latency and jitter: delivery order changes, the
                // delta stream (driven by the shared planner) must not.
                .engine(AsyncNetwork::<Msg>::new(
                    AsyncConfig::uniform(1, 3, 23).with_jitter(1),
                ))
                .build(g0),
        ),
        // Component-parallel batches: speculation and replay happen in
        // planner shards; the delta stream the mirror consumes is merged
        // in repair-seq order, identical to the sequential engine's.
        _ => Box::new(
            Xheal::builder()
                .config(cfg)
                .sink(sink)
                .build_parallel(g0, 2),
        ),
    };
    (engine, mirror)
}

/// One adversary move for the mirror test: mixed inserts, single deletions,
/// and multi-victim batches, always valid against the current graph.
fn next_event(engine: &dyn HealingEngine, rng: &mut StdRng, next_id: &mut u64) -> Event {
    let nodes = engine.graph().node_vec();
    let roll = rng.random_range(0..4u32);
    if nodes.len() < 8 || roll == 0 {
        let node = NodeId::new(*next_id);
        *next_id += 1;
        let wanted = rng.random_range(1..=2usize.min(nodes.len()));
        let mut neighbors = Vec::with_capacity(wanted);
        for _ in 0..wanted {
            neighbors.push(nodes[rng.random_range(0..nodes.len())]);
        }
        neighbors.dedup();
        Event::Insert { node, neighbors }
    } else if roll < 3 {
        Event::Delete {
            node: nodes[rng.random_range(0..nodes.len())],
        }
    } else {
        let mut victims: Vec<NodeId> = Vec::new();
        for _ in 0..rng.random_range(2..=3usize) {
            let v = nodes[rng.random_range(0..nodes.len())];
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        Event::DeleteBatch { nodes: victims }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mirror equality after every event, for Xheal and both DistXheal
    /// engines, on one shared schedule.
    #[test]
    fn mirror_reconstructs_graph_under_mixed_churn(
        seed in any::<u64>(),
        n in 12usize..28,
        steps in 8usize..30,
    ) {
        let g0 = generators::connected_erdos_renyi(
            n,
            0.15,
            &mut StdRng::seed_from_u64(seed),
        );
        let cfg = XhealConfig::new(4).with_seed(seed ^ 0xD17A);

        // Record the schedule once (the event choice depends only on the
        // graph, which is bit-identical across engines).
        for kind in 0..4usize {
            let (mut engine, mirror) = engine_with_mirror(kind, &g0, cfg.clone());
            let mut adv_rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
            let mut next_id = 10_000u64;
            for step in 0..steps {
                let event = next_event(engine.as_ref(), &mut adv_rng, &mut next_id);
                engine.apply(&event).map_err(|e| {
                    TestCaseError::fail(format!("{}: {e}", engine.name()))
                })?;
                let matches = engine.graph() == mirror.borrow().graph();
                prop_assert!(
                    matches,
                    "{} step {}: mirror diverged after {:?}",
                    engine.name(),
                    step,
                    event
                );
            }
        }
    }

    /// Late subscription: a mirror seeded from the graph mid-run tracks
    /// the engine from that point on.
    #[test]
    fn mirror_subscribed_mid_run_tracks_from_there(
        seed in any::<u64>(),
        steps in 4usize..16,
    ) {
        let g0 = generators::connected_erdos_renyi(
            20,
            0.15,
            &mut StdRng::seed_from_u64(seed),
        );
        let mut net = Xheal::new(&g0, XhealConfig::new(4).with_seed(seed ^ 7));
        let mut adv_rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let mut next_id = 20_000u64;
        // Churn without any subscriber first.
        for _ in 0..steps {
            let event = next_event(&net, &mut adv_rng, &mut next_id);
            net.apply(&event).map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        // Subscribe now, seeded from the *current* graph.
        let mirror = Rc::new(RefCell::new(DeltaMirror::new(net.graph())));
        net.subscribe(Box::new(Rc::clone(&mirror)));
        for _ in 0..steps {
            let event = next_event(&net, &mut adv_rng, &mut next_id);
            net.apply(&event).map_err(|e| TestCaseError::fail(e.to_string()))?;
            let matches = net.graph() == mirror.borrow().graph();
            prop_assert!(matches, "mirror diverged after {:?}", event);
        }
    }
}
