//! Scenario reproductions of the paper's figures.
//!
//! - Figure 4: star-center deletion replaced by an expander over the leaves;
//! - Figure 2: a node belonging to several primary clouds;
//! - Figure 3 / Case 2.2: deletion of a bridge node of a secondary cloud.

use xheal_core::{invariants, HealCase, Xheal, XhealConfig};
use xheal_graph::{components, generators, CloudKind, NodeId};
use xheal_spectral::normalized_algebraic_connectivity;

fn n(raw: u64) -> NodeId {
    NodeId::new(raw)
}

#[test]
fn figure4_star_center_replaced_by_expander_cloud() {
    let mut x = Xheal::new(&generators::star(40), XhealConfig::new(6).with_seed(4));
    let report = x.heal_delete(n(0)).unwrap();
    assert_eq!(report.case, HealCase::AllBlack);
    // One primary cloud spanning all 39 ex-leaves.
    assert_eq!(x.cloud_count(), 1);
    let (color, kind) = x.cloud_colors()[0];
    assert_eq!(kind, CloudKind::Primary);
    assert_eq!(x.cloud(color).unwrap().len(), 39);
    // The patch is an expander, not a tree: constant normalized gap.
    let lambda = normalized_algebraic_connectivity(x.graph());
    assert!(lambda > 0.2, "lambda {lambda}");
    // Degrees stay at kappa.
    for v in x.graph().nodes() {
        assert!(x.graph().degree(v).unwrap() <= 6);
    }
    invariants::check_invariants(&x).unwrap();
}

#[test]
fn figure2_node_in_multiple_primary_clouds() {
    // Two stars sharing a leaf: deleting both centers puts the shared leaf
    // into two primary clouds (the paper's Figure 2 situation).
    let mut g = generators::star(8); // center 0, leaves 1..7
    for i in 20..27 {
        g.add_node(n(i)).unwrap();
    }
    // Second star centered at 20, sharing leaf 1.
    for i in 21..27 {
        g.add_black_edge(n(20), n(i)).unwrap();
    }
    g.add_black_edge(n(20), n(1)).unwrap();
    let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(2));
    x.heal_delete(n(0)).unwrap();
    x.heal_delete(n(20)).unwrap();
    let st = x.node_state(n(1)).unwrap();
    assert_eq!(
        st.primaries.len(),
        2,
        "shared leaf must belong to two primary clouds"
    );
    assert!(components::is_connected(x.graph()));
    invariants::check_invariants(&x).unwrap();
}

#[test]
fn figure3_bridge_deletion_case_2_2() {
    // Drive churn until a secondary cloud exists, then kill one of its
    // bridges and verify the Case 2.2 repair: secondary still spans >= 2
    // clouds (or was legally dissolved), graph connected, invariants hold.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(31);
    let g0 = generators::connected_erdos_renyi(36, 0.09, &mut rng);
    let mut x = Xheal::new(&g0, XhealConfig::new(4).with_seed(13));

    let mut bridge = None;
    for i in 0..30 {
        let nodes = x.graph().node_vec();
        let victim = nodes[(i * 5) % nodes.len()];
        x.heal_delete(victim).unwrap();
        if let Some(&(f, _)) = x
            .cloud_colors()
            .iter()
            .find(|&&(_, k)| k == CloudKind::Secondary)
        {
            bridge = x.cloud(f).unwrap().members().iter().next().copied();
            break;
        }
    }
    let bridge = bridge.expect("churn produces a secondary cloud");
    let report = x.heal_delete(bridge).unwrap();
    assert_eq!(report.case, HealCase::Bridge);
    assert!(components::is_connected(x.graph()));
    invariants::check_invariants(&x).unwrap();
    // Any surviving secondary cloud spans at least two primaries.
    for (c, k) in x.cloud_colors() {
        if k == CloudKind::Secondary {
            let distinct: std::collections::BTreeSet<_> =
                x.cloud(c).unwrap().attachments().values().collect();
            assert!(distinct.len() >= 2 || x.cloud(c).unwrap().len() >= 2);
        }
    }
}

#[test]
fn preliminaries_cheeger_gap_example() {
    // The two-cliques-with-expander-bridge example: h constant, phi small.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let g = generators::clique_pair_with_expander_bridge(18, 4, &mut rng);
    let h = xheal_graph::cuts::edge_expansion_exact(&g).unwrap().value;
    let phi = xheal_graph::cuts::conductance_exact(&g).unwrap().value;
    assert!(h >= 1.0, "h stays constant: {h}");
    assert!(phi < h / 2.0, "phi {phi} must be far below h {h}");
}
