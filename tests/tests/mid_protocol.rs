//! Fault injection: the adversary deletes a node *while* a DistXheal repair
//! is in flight. The LOCAL-model engine drops the in-flight messages
//! addressed to the casualty (counting them), and the repair still
//! converges to a connected network.

use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::XhealConfig;
use xheal_dist::DistXheal;
use xheal_graph::{components, generators};

#[test]
fn repeated_mid_protocol_deletions_converge() {
    let mut rng = StdRng::seed_from_u64(0xFA11);
    let g0 = generators::connected_erdos_renyi(48, 0.1, &mut rng);
    let mut net = DistXheal::new(&g0, XhealConfig::new(4).with_seed(6));

    // Alternate clean deletions with mid-protocol double-failures.
    for round in 0..10 {
        let nodes = net.graph().node_vec();
        let v = nodes[rng.random_range(0..nodes.len())];
        if round % 2 == 0 {
            net.delete(v).unwrap();
        } else {
            // The casualty is a neighbor of the victim when one exists (so
            // it participates in the repair), else any other node.
            let casualty = net
                .graph()
                .neighbors(v)
                .next()
                .or_else(|| nodes.iter().copied().find(|&u| u != v))
                .unwrap();
            net.delete_with_mid_protocol_failure(v, casualty).unwrap();
        }
        assert!(
            components::is_connected(net.graph()),
            "round {round}: disconnected after mid-protocol failure"
        );
    }

    // 5 clean + 5 double deletions.
    assert_eq!(net.costs().len(), 15);
    // Per-deletion costs never include pre-failure traffic twice: the sum of
    // per-repair messages matches the engine total.
    let summed: u64 = net.costs().iter().map(|c| c.messages).sum();
    assert_eq!(summed, net.counters().messages);
    assert!(
        net.counters().dropped > 0,
        "mid-protocol deaths must drop in-flight messages"
    );
}
