//! The monitor's consistency proof: an [`IncrementalCsr`] patched purely
//! from the [`TopologyDelta`] stream equals `Graph::csr_view()` — after
//! **every** event, under arbitrary mixed insert/delete/batch churn, for
//! the centralized executor, both distributed engines, and the
//! component-parallel executor, including a subscription that starts
//! mid-run. The companion property pins the
//! monitor's O(1)-maintained degree histograms and degree-increase metric
//! against from-scratch recounts on the same schedule.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::{Event, HealingEngine, Xheal, XhealConfig};
use xheal_dist::{DistXheal, Msg};
use xheal_graph::{generators, CsrView, Graph, NodeId};
use xheal_metrics::{degree_increase, GPrime};
use xheal_monitor::{IncrementalCsr, Monitor, MonitorConfig};
use xheal_sim::{AsyncConfig, AsyncNetwork};

/// A delta-driven wrapper so the bare CSR can ride the sink registry.
struct CsrSink(IncrementalCsr);

impl xheal_core::TopologySink for CsrSink {
    fn on_delta(&mut self, delta: &xheal_core::TopologyDelta) {
        self.0.apply(delta);
    }
}

/// Builds one engine of the given kind over `g0` with both an incremental
/// CSR and a full monitor subscribed.
#[allow(clippy::type_complexity)]
fn engine_with_monitor(
    kind: usize,
    g0: &Graph,
    cfg: XhealConfig,
) -> (
    Box<dyn HealingEngine>,
    Rc<RefCell<CsrSink>>,
    Rc<RefCell<Monitor>>,
) {
    let csr = Rc::new(RefCell::new(CsrSink(IncrementalCsr::new(g0))));
    let monitor = Rc::new(RefCell::new(Monitor::new(g0, MonitorConfig::default())));
    let csr_sink = Box::new(Rc::clone(&csr));
    let mon_sink = Box::new(Rc::clone(&monitor));
    let engine: Box<dyn HealingEngine> = match kind {
        0 => Box::new(
            Xheal::builder()
                .config(cfg)
                .sink(csr_sink)
                .sink(mon_sink)
                .build(g0),
        ),
        1 => Box::new(
            DistXheal::builder()
                .config(cfg)
                .sink(csr_sink)
                .sink(mon_sink)
                .build(g0),
        ),
        2 => Box::new(
            DistXheal::builder()
                .config(cfg)
                .sink(csr_sink)
                .sink(mon_sink)
                // Latency and jitter reorder deliveries; the delta stream
                // (driven by the shared planner) must not change.
                .engine(AsyncNetwork::<Msg>::new(
                    AsyncConfig::uniform(1, 3, 29).with_jitter(1),
                ))
                .build(g0),
        ),
        // Component-parallel batches: the merged per-component delta
        // streams arrive in repair-seq order, so the monitor's batch
        // bracket sees the same sequence as the sequential engine's.
        _ => Box::new(
            Xheal::builder()
                .config(cfg)
                .sink(csr_sink)
                .sink(mon_sink)
                .build_parallel(g0, 2),
        ),
    };
    (engine, csr, monitor)
}

/// One adversary move: mixed inserts, single deletions, and multi-victim
/// batches, always valid against the current graph.
fn next_event(graph: &Graph, rng: &mut StdRng, next_id: &mut u64) -> Event {
    let nodes = graph.node_vec();
    let roll = rng.random_range(0..4u32);
    if nodes.len() < 8 || roll == 0 {
        let node = NodeId::new(*next_id);
        *next_id += 1;
        let wanted = rng.random_range(1..=2usize.min(nodes.len()));
        let mut neighbors = Vec::with_capacity(wanted);
        for _ in 0..wanted {
            neighbors.push(nodes[rng.random_range(0..nodes.len())]);
        }
        neighbors.dedup();
        Event::Insert { node, neighbors }
    } else if roll < 3 {
        Event::Delete {
            node: nodes[rng.random_range(0..nodes.len())],
        }
    } else {
        let mut victims: Vec<NodeId> = Vec::new();
        for _ in 0..rng.random_range(2..=3usize) {
            let v = nodes[rng.random_range(0..nodes.len())];
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        Event::DeleteBatch { nodes: victims }
    }
}

/// Field-by-field CSR equality (CsrView carries no `PartialEq` on purpose).
fn csr_equal(a: &CsrView, b: &CsrView) -> bool {
    a.nodes() == b.nodes() && a.offsets() == b.offsets() && a.neighbors_flat() == b.neighbors_flat()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// IncrementalCsr == Graph::csr_view() after every event, for Xheal and
    /// both DistXheal engines, on one shared schedule — with the generation
    /// stamp advancing with every delta the engine emitted.
    #[test]
    fn incremental_csr_matches_fresh_rebuild_under_mixed_churn(
        seed in any::<u64>(),
        n in 12usize..28,
        steps in 8usize..24,
    ) {
        let g0 = generators::connected_erdos_renyi(
            n,
            0.15,
            &mut StdRng::seed_from_u64(seed),
        );
        let cfg = XhealConfig::new(4).with_seed(seed ^ 0xCAFE);

        for kind in 0..4usize {
            let (mut engine, csr, monitor) = engine_with_monitor(kind, &g0, cfg.clone());
            let mut adv_rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
            let mut next_id = 10_000u64;
            let mut last_generation = 0u64;
            for step in 0..steps {
                let event = next_event(engine.graph(), &mut adv_rng, &mut next_id);
                engine.apply(&event).map_err(|e| {
                    TestCaseError::fail(format!("{}: {e}", engine.name()))
                })?;
                let inc = csr.borrow();
                inc.0.validate().map_err(TestCaseError::fail)?;
                prop_assert!(
                    csr_equal(&inc.0.snapshot(), &engine.graph().csr_view()),
                    "{} step {step}: incremental CSR diverged after {event:?}",
                    engine.name()
                );
                // Generation stamp discipline: strictly monotone, bumped
                // at least once per event that changed anything.
                let generation = inc.0.generation();
                prop_assert!(
                    generation > last_generation,
                    "{} step {step}: generation stalled at {generation}",
                    engine.name()
                );
                last_generation = generation;
                // The full monitor rides the same stream and sees the same
                // topology counts.
                let m = monitor.borrow();
                prop_assert!(
                    (m.node_count(), m.edge_count())
                        == (engine.graph().node_count(), engine.graph().edge_count()),
                    "{} step {}: monitor counts diverged", engine.name(), step
                );
            }
        }
    }

    /// Mid-run subscription: a CSR seeded from the graph mid-run tracks the
    /// engine from that point on, generation counting from zero.
    #[test]
    fn incremental_csr_subscribed_mid_run_tracks_from_there(
        seed in any::<u64>(),
        steps in 4usize..14,
    ) {
        let g0 = generators::connected_erdos_renyi(
            20,
            0.15,
            &mut StdRng::seed_from_u64(seed),
        );
        let mut net = Xheal::new(&g0, XhealConfig::new(4).with_seed(seed ^ 3));
        let mut adv_rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let mut next_id = 20_000u64;
        // Churn without any subscriber first.
        for _ in 0..steps {
            let event = next_event(net.graph(), &mut adv_rng, &mut next_id);
            net.apply(&event).map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        // Subscribe now, seeded from the *current* graph.
        let csr = Rc::new(RefCell::new(CsrSink(IncrementalCsr::new(net.graph()))));
        net.subscribe(Box::new(Rc::clone(&csr)));
        prop_assert_eq!(csr.borrow().0.generation(), 0);
        for _ in 0..steps {
            let event = next_event(net.graph(), &mut adv_rng, &mut next_id);
            net.apply(&event).map_err(|e| TestCaseError::fail(e.to_string()))?;
            let inc = csr.borrow();
            prop_assert!(
                csr_equal(&inc.0.snapshot(), &net.graph().csr_view()),
                "mid-run CSR diverged after {:?}", event
            );
        }
    }

    /// The monitor's maintained degree/black-degree histograms and degree
    /// increase equal from-scratch recounts after every event of a mixed
    /// churn schedule (the satellite pin).
    #[test]
    fn maintained_metrics_match_recounts_under_mixed_churn(
        seed in any::<u64>(),
        steps in 6usize..20,
    ) {
        let g0 = generators::connected_erdos_renyi(
            18,
            0.18,
            &mut StdRng::seed_from_u64(seed),
        );
        let monitor = Rc::new(RefCell::new(Monitor::new(&g0, MonitorConfig::default())));
        let mut net = Xheal::builder()
            .config(XhealConfig::new(4).with_seed(seed ^ 0xD06))
            .sink(Box::new(Rc::clone(&monitor)))
            .build(&g0);
        let mut gp = GPrime::new(&g0);
        let mut adv_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut next_id = 30_000u64;
        for step in 0..steps {
            let event = next_event(net.graph(), &mut adv_rng, &mut next_id);
            if let Event::Insert { node, neighbors } = &event {
                gp.record_insert(*node, neighbors)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
            }
            net.apply(&event).map_err(|e| TestCaseError::fail(e.to_string()))?;

            let m = monitor.borrow();
            let g = net.graph();
            // From-scratch recounts.
            let mut degs: Vec<u64> = Vec::new();
            let mut blacks: Vec<u64> = Vec::new();
            for v in g.nodes() {
                let d = g.degree(v).unwrap();
                let b = g.black_degree(v).unwrap();
                if d >= degs.len() { degs.resize(d + 1, 0); }
                if b >= blacks.len() { blacks.resize(b + 1, 0); }
                degs[d] += 1;
                blacks[b] += 1;
            }
            prop_assert!(
                m.degrees().buckets() == &degs[..],
                "step {}: degree histogram drift after {:?}", step, event
            );
            prop_assert!(
                m.black_degrees().buckets() == &blacks[..],
                "step {}: black-degree histogram drift after {:?}", step, event
            );
            let expect = degree_increase(g, gp.graph());
            prop_assert!(
                (m.degree_increase() - expect).abs() < 1e-12,
                "step {}: degree increase {} vs recomputed {}",
                step, m.degree_increase(), expect
            );
        }
    }
}
