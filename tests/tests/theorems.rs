//! Integration tests asserting the paper's theorem-level guarantees on
//! cross-crate runs (Xheal + workload + metrics + spectral).

use xheal_core::invariants::check_invariants;
use xheal_graph::components;
use xheal_integration::churned_xheal;
use xheal_metrics::{degree_increase, expansion_report, stretch};

#[test]
fn theorem_2_connectivity_under_heavy_churn() {
    for seed in [1u64, 2, 3] {
        let (healer, _) = churned_xheal(40, 120, 0.3, 6, seed);
        assert!(
            components::is_connected(healer.graph()),
            "seed {seed}: healed graph disconnected"
        );
        check_invariants(&healer).unwrap();
    }
}

#[test]
fn theorem_2_1_degree_bound_with_slack() {
    let kappa = 4usize;
    for seed in [5u64, 6] {
        let (healer, gprime) = churned_xheal(30, 80, 0.35, kappa, seed);
        for v in healer.graph().nodes() {
            let d = healer.graph().degree(v).unwrap() as f64;
            let dp = gprime.degree(v).unwrap_or(0) as f64;
            assert!(
                d <= kappa as f64 * dp + 3.0 * kappa as f64,
                "seed {seed}, node {v}: {d} vs d'={dp}"
            );
        }
        // The aggregate ratio metric is finite and sane.
        let r = degree_increase(healer.graph(), &gprime);
        assert!(r >= 1.0 && r <= 4.0 * kappa as f64);
    }
}

#[test]
fn theorem_2_2_stretch_logarithmic() {
    let (healer, gprime) = churned_xheal(60, 100, 0.2, 6, 9);
    let n = healer.graph().node_count() as f64;
    let s = stretch(healer.graph(), &gprime, 200, 10).expect("comparable pairs exist");
    assert!(s.is_finite(), "stretch must be finite (connectivity)");
    assert!(
        s <= 3.0 * n.log2(),
        "stretch {s} above 3*log2(n) = {}",
        3.0 * n.log2()
    );
}

#[test]
fn theorem_2_3_expansion_not_collapsed() {
    // After heavy deletion the healed graph must not develop a
    // pathological bottleneck: lambda_norm stays well above the O(1/n^2)
    // range tree-patches produce.
    let (healer, _) = churned_xheal(50, 80, 0.15, 6, 21);
    let rep = expansion_report(healer.graph());
    let n = healer.graph().node_count() as f64;
    assert!(
        rep.lambda_norm > 1.0 / n,
        "lambda_norm {} collapsed below 1/n",
        rep.lambda_norm
    );
}

#[test]
fn gprime_is_append_only_superset() {
    let (healer, gprime) = churned_xheal(25, 60, 0.4, 4, 33);
    // Every live node exists in G'.
    for v in healer.graph().nodes() {
        assert!(gprime.contains_node(v));
    }
    // Every black edge of G_t is an edge of G' (healing edges are colored;
    // black edges come only from the original graph + insertions).
    for (u, v, l) in healer.graph().edges() {
        if l.is_black() {
            assert!(gprime.has_edge(u, v), "black edge ({u},{v}) missing in G'");
        }
    }
}
