//! The component-parallel executor's determinism proof: `ParallelXheal`
//! is bit-identical to sequential `Xheal` — same graph, same cloud
//! registry, same statistics, same `TopologyDelta` stream — at every
//! thread count, under arbitrary mixed insert/delete/batch churn and under
//! conflict-heavy clustered outages, plus the worker pool's poisoned-scope
//! contract (a panicking component planner propagates; the engine's pool
//! is not wedged for unrelated callers).

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::{
    invariants, DeltaMirror, Event, HealingEngine, ParallelXheal, Xheal, XhealConfig,
};
use xheal_graph::{generators, Graph, NodeId};
use xheal_pool::WorkerPool;
use xheal_workload::{bfs_rack, run, BurstDeletions};

/// The thread counts every property is pinned at. 1 exercises the
/// speculation/commit machinery with no actual concurrency; 8 oversubscribes
/// any CI host, forcing heavy interleaving of component tasks.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One adversary move: mixed inserts, single deletions, and batches big
/// enough to split into several dead components.
fn next_event(graph: &Graph, rng: &mut StdRng, next_id: &mut u64) -> Event {
    let nodes = graph.node_vec();
    let roll = rng.random_range(0..5u32);
    if nodes.len() < 12 || roll == 0 {
        let node = NodeId::new(*next_id);
        *next_id += 1;
        let wanted = rng.random_range(1..=3usize.min(nodes.len()));
        let mut neighbors = Vec::with_capacity(wanted);
        for _ in 0..wanted {
            neighbors.push(nodes[rng.random_range(0..nodes.len())]);
        }
        neighbors.dedup();
        Event::Insert { node, neighbors }
    } else if roll < 3 {
        Event::Delete {
            node: nodes[rng.random_range(0..nodes.len())],
        }
    } else {
        let mut victims: Vec<NodeId> = Vec::new();
        for _ in 0..rng.random_range(3..=8usize) {
            let v = nodes[rng.random_range(0..nodes.len())];
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        Event::DeleteBatch { nodes: victims }
    }
}

/// Drives the sequential engine through `steps` events, recording the
/// schedule for bit-exact replay against the parallel engines.
fn record_schedule(net: &mut Xheal, seed: u64, steps: usize) -> Vec<Event> {
    let mut adv_rng = StdRng::seed_from_u64(seed);
    let mut next_id = 10_000u64;
    let mut events = Vec::with_capacity(steps);
    for _ in 0..steps {
        let event = next_event(net.graph(), &mut adv_rng, &mut next_id);
        net.apply(&event).expect("recorded event is valid");
        events.push(event);
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Graph, fingerprint, cloud registry, statistics, and mirrored delta
    /// stream all bit-identical to sequential at every thread count.
    #[test]
    fn parallel_is_bit_identical_across_thread_counts(
        seed in any::<u64>(),
        n in 16usize..40,
        steps in 10usize..26,
    ) {
        let g0 = generators::connected_erdos_renyi(
            n,
            0.15,
            &mut StdRng::seed_from_u64(seed),
        );
        let cfg = XhealConfig::new(4).with_seed(seed ^ 0x9A11);
        let mut seq = Xheal::new(&g0, cfg.clone());
        let events = record_schedule(&mut seq, seed ^ 0xAD7, steps);

        for threads in THREADS {
            let mirror = Rc::new(RefCell::new(DeltaMirror::new(&g0)));
            let mut par = Xheal::builder()
                .config(cfg.clone())
                .sink(Box::new(Rc::clone(&mirror)))
                .build_parallel(&g0, threads);
            for event in &events {
                par.apply(event).map_err(|e| {
                    TestCaseError::fail(format!("threads={threads}: {e}"))
                })?;
            }
            prop_assert!(
                seq.graph() == par.graph(),
                "threads={threads}: graphs diverged"
            );
            prop_assert!(
                seq.graph().edge_fingerprint() == par.graph().edge_fingerprint(),
                "threads={threads}: fingerprints diverged"
            );
            prop_assert_eq!(seq.cloud_colors(), par.cloud_colors());
            prop_assert_eq!(seq.stats(), par.stats());
            prop_assert!(
                par.graph() == mirror.borrow().graph(),
                "threads={threads}: delta stream diverged from graph"
            );
            invariants::check_invariants(par.as_sequential())
                .map_err(|e| TestCaseError::fail(format!("threads={threads}: {e}")))?;
        }
    }

    /// Clustered rack outages: every batch is one BFS ball, so victims
    /// share clouds and boundaries — the conflict-heavy regime where the
    /// speculative planner must replay components. Still bit-identical.
    #[test]
    fn clustered_outages_force_replays_and_stay_identical(
        seed in any::<u64>(),
        bursts in 2usize..6,
    ) {
        let g0 = generators::random_regular(
            72,
            6,
            &mut StdRng::seed_from_u64(seed),
        );
        let cfg = XhealConfig::new(4).with_seed(seed ^ 0xC1A5);
        let mut adv_rng = StdRng::seed_from_u64(seed ^ 0xFA11);
        let mut seq = Xheal::new(&g0, cfg.clone());
        // Record BFS-ball batches against the sequential engine's graph.
        let mut events: Vec<Event> = Vec::with_capacity(bursts);
        for _ in 0..bursts {
            let nodes = seq.graph().node_vec();
            let center = nodes[adv_rng.random_range(0..nodes.len())];
            let victims = bfs_rack(seq.graph(), center, 12);
            let event = Event::DeleteBatch { nodes: victims };
            seq.apply(&event).expect("rack victims are live");
            events.push(event);
        }
        for threads in THREADS {
            let mut par = ParallelXheal::new(&g0, cfg.clone(), threads);
            for event in &events {
                par.apply(event).map_err(|e| {
                    TestCaseError::fail(format!("threads={threads}: {e}"))
                })?;
            }
            prop_assert!(
                seq.graph() == par.graph(),
                "threads={threads}: clustered outage diverged"
            );
            prop_assert_eq!(seq.stats(), par.stats());
        }
    }
}

/// A panicking job inside a scope reaches the scope caller as a panic (not
/// a hang, not a silent drop), and the pool keeps serving fresh scopes
/// afterwards — the poisoned-worker contract `ParallelXheal` relies on.
#[test]
fn pool_panic_propagates_and_pool_is_reusable_for_healing() {
    let pool = WorkerPool::new(2);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.scope(|s| {
            s.spawn(|| panic!("component planner died"));
            s.spawn(|| {});
        });
    }));
    let payload = caught.expect_err("job panic must propagate to the scope caller");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("component planner died"), "payload: {msg:?}");

    // The same pool still runs real work after the poisoned scope.
    let (tx, rx) = std::sync::mpsc::channel();
    pool.scope(|s| {
        for i in 0..4u32 {
            let tx = tx.clone();
            s.spawn(move || tx.send(i).unwrap());
        }
    });
    let mut got: Vec<u32> = rx.try_iter().collect();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 2, 3]);
}

/// The parallel engine rides the generic workload runner like any other
/// `HealingEngine`, and a rack-failure adversary driving both engines on
/// the same seed produces bit-identical topologies and summaries.
#[test]
fn parallel_engine_rides_the_generic_runner() {
    let g0 = generators::random_regular(64, 6, &mut StdRng::seed_from_u64(41));
    let cfg = XhealConfig::new(4).with_seed(17);
    let steps = 40;
    let seed = 0xB1257;

    let mut seq = Xheal::new(&g0, cfg.clone());
    let mut seq_adv = BurstDeletions::new(6, 5, 3, 16, &g0);
    let seq_summary = run(&mut seq, &mut seq_adv, steps, seed);

    let mut par = ParallelXheal::new(&g0, cfg, 4);
    let mut par_adv = BurstDeletions::new(6, 5, 3, 16, &g0);
    let par_summary = run(&mut par, &mut par_adv, steps, seed);

    assert!(seq.graph() == par.graph());
    assert_eq!(
        seq.graph().edge_fingerprint(),
        par.graph().edge_fingerprint()
    );
    assert_eq!(seq_summary.events, par_summary.events);
    assert_eq!(seq_summary.edges_added, par_summary.edges_added);
    assert_eq!(seq_summary.edges_removed, par_summary.edges_removed);
}
