//! Trace determinism: the span-tree projection (`Tracer::span_tree`) is a
//! pure function of the seed — identical seeds produce identical trees for
//! the centralized engine, the distributed protocol stack, and the
//! component-parallel executor at every thread count — plus the chrome
//! exporter's balance invariant and the ledger/counter cross-check.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::{Event, HealingEngine, ParallelXheal, Xheal, XhealConfig};
use xheal_dist::DistXheal;
use xheal_graph::{generators, NodeId};
use xheal_trace::{hook, EvKind, Layer, Tracer, TreeEvent};

const KAPPA: usize = 4;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A seeded churn schedule over a ring-with-chords overlay: `singles`
/// single deletions then one clustered batch of `batch` victims.
fn schedule(n: usize, seed: u64, singles: usize, batch: usize) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<NodeId> = generators::ring_with_chords(n).nodes().collect();
    let victims = (0..singles)
        .map(|_| live.swap_remove(rng.random_range(0..live.len())))
        .collect();
    let batch = (0..batch)
        .map(|_| live.swap_remove(rng.random_range(0..live.len())))
        .collect();
    (victims, batch)
}

/// Runs the distributed stack under a tracer and returns the span tree.
fn dist_tree(n: usize, seed: u64, singles: usize, batch: usize) -> Vec<TreeEvent> {
    let tracer = Tracer::shared(1 << 14);
    let g0 = generators::ring_with_chords(n);
    let mut net = DistXheal::new(&g0, XhealConfig::new(KAPPA).with_seed(seed));
    net.set_tracer(Some(tracer.clone()));
    let (victims, batched) = schedule(n, seed, singles, batch);
    for v in victims {
        net.delete(v).expect("victim is live");
    }
    net.delete_batch(&batched).expect("victims are live");
    let tree = hook::lock(&tracer).span_tree();
    // The forensics ledger's protocol totals agree with the engine's own
    // cost accounting — the ledger is not a parallel bookkeeping system.
    let traced: u64 = hook::lock(&tracer)
        .forensics()
        .repairs
        .iter()
        .map(|r| r.instant_arg_sum("proto.done"))
        .sum();
    assert_eq!(traced, net.counters().messages);
    tree
}

/// Runs the component-parallel executor at `threads` and returns the tree.
fn parallel_tree(n: usize, seed: u64, threads: usize) -> Vec<TreeEvent> {
    let tracer = Tracer::shared(1 << 14);
    let g0 = generators::ring_with_chords(n);
    let mut eng = ParallelXheal::new(&g0, XhealConfig::new(KAPPA).with_seed(seed), threads);
    eng.set_tracer(Some(tracer.clone()));
    let (victims, batched) = schedule(n, seed, 4, 8);
    for v in victims {
        eng.heal_delete(v).expect("victim is live");
    }
    eng.heal_delete_batch(&batched).expect("victims are live");
    let tree = hook::lock(&tracer).span_tree();
    tree
}

/// Layers present in a tree (the acceptance surface: a healed distributed
/// run shows planner, protocol, and transport; adding any executor-layer
/// source pushes past the four-layer floor).
fn layers(tree: &[TreeEvent]) -> Vec<Layer> {
    let mut out: Vec<Layer> = tree.iter().map(|e| e.layer).collect();
    out.sort();
    out.dedup();
    out
}

#[test]
fn identical_seeds_identical_dist_trees() {
    let a = dist_tree(96, 23, 8, 6);
    let b = dist_tree(96, 23, 8, 6);
    assert!(!a.is_empty());
    assert_eq!(a, b);
    let ls = layers(&a);
    for l in [Layer::Planner, Layer::Protocol, Layer::Transport] {
        assert!(ls.contains(&l), "missing {l:?} in {ls:?}");
    }
}

#[test]
fn different_seeds_differ() {
    // Sanity: the tree is not a constant — the determinism assertions
    // above would pass vacuously if it were.
    assert_ne!(dist_tree(96, 23, 8, 6), dist_tree(96, 24, 8, 6));
}

#[test]
fn thread_count_does_not_change_the_tree() {
    let reference = parallel_tree(96, 5, THREADS[0]);
    assert!(!reference.is_empty());
    // The batch fans per-component speculation out on worker lanes; the
    // merged tree must still be schedule-independent.
    assert!(
        reference.iter().any(|e| e.lane != 0),
        "no worker lanes traced"
    );
    for &t in &THREADS[1..] {
        assert_eq!(reference, parallel_tree(96, 5, t), "threads = {t}");
    }
}

#[test]
fn chrome_export_is_balanced_and_monotone() {
    let tracer = Tracer::shared(1 << 12);
    let g0 = generators::ring_with_chords(64);
    let mut eng = Xheal::new(&g0, XhealConfig::new(KAPPA).with_seed(9));
    eng.set_tracer(Some(tracer.clone()));
    let (victims, batched) = schedule(64, 9, 6, 5);
    for v in victims {
        eng.heal_delete(v).expect("victim is live");
    }
    eng.apply(&Event::DeleteBatch { nodes: batched })
        .expect("victims are live");
    let t = hook::lock(&tracer);
    let json = t.chrome_trace_json();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"displayTimeUnit\""));
    assert_eq!(
        json.matches("\"ph\": \"B\"").count(),
        json.matches("\"ph\": \"E\"").count(),
        "unbalanced duration events"
    );
    // Executor spans wrap planner spans in the tree.
    let tree = t.span_tree();
    assert!(tree
        .iter()
        .any(|e| e.layer == Layer::Planner && e.depth > 0 && e.kind == EvKind::Begin));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Identical seeds give identical distributed span trees for arbitrary
    /// schedule shapes.
    #[test]
    fn prop_dist_trees_deterministic(
        seed in 0u64..1_000_000,
        n in 48usize..96,
        singles in 2usize..8,
        batch in 3usize..7,
    ) {
        prop_assert_eq!(
            dist_tree(n, seed, singles, batch),
            dist_tree(n, seed, singles, batch)
        );
    }

    /// The parallel executor's tree is invariant across thread counts for
    /// arbitrary seeds (lanes are keyed on task identity, not thread id).
    #[test]
    fn prop_parallel_trees_thread_invariant(seed in 0u64..1_000_000) {
        let reference = parallel_tree(72, seed, 1);
        for &t in &[2usize, 8] {
            let tree = parallel_tree(72, seed, t);
            prop_assert!(reference == tree, "tree differs at threads = {}", t);
        }
    }
}
