//! The grouped bulk-application path's equivalence proof.
//!
//! `Graph::apply_delta` rewrites every touched neighbor list with one merge
//! walk per plan flush; these tests pin that path **bit-identical** — same
//! topology fingerprint, same [`TopologyDelta`] stream, same order — to the
//! sequential per-edge reference ([`PlanAction::apply_streamed`], two binary
//! searches and a list edit per edge), at the plan level and end to end on
//! all three Xheal executors under mixed insert/delete/batch churn,
//! including recolor (a color joining an existing edge) and label-strip
//! (dissolve) cases.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::{
    ApplyScratch, BatchVictim, DeltaMirror, Event, HealingEngine, RepairPlanner, SinkRegistry,
    TopologyDelta, TopologySink, Xheal, XhealConfig,
};
use xheal_dist::{DistXheal, Msg};
use xheal_graph::{generators, EdgeLabels, Graph, NodeId};
use xheal_sim::{AsyncConfig, AsyncNetwork};

fn fold_hash(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x100_0000_01b3)
}

/// Order-sensitive fingerprint over the full labeled edge enumeration —
/// equal fingerprints mean identical topology *and* iteration order.
fn fingerprint(g: &Graph) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (u, v, l) in g.edges() {
        h = fold_hash(h, u.as_u64());
        h = fold_hash(h, v.as_u64());
        h = fold_hash(h, u64::from(l.is_black()));
        for c in l.colors() {
            h = fold_hash(h, c.as_u64());
        }
    }
    h
}

/// A sink that records the raw delta stream, flattening batched emissions
/// in order — so grouped and per-delta feeds are directly comparable.
#[derive(Debug, Default)]
struct RecordingSink(Vec<TopologyDelta>);

impl TopologySink for RecordingSink {
    fn on_delta(&mut self, delta: &TopologyDelta) {
        self.0.push(*delta);
    }
}

fn recording_registry() -> (SinkRegistry, Rc<RefCell<RecordingSink>>) {
    let rec = Rc::new(RefCell::new(RecordingSink::default()));
    let mut sinks = SinkRegistry::default();
    sinks.register(Box::new(Rc::clone(&rec)));
    (sinks, rec)
}

// ----------------------------------------------------------------------
// Plan-level equivalence: one planner, two graphs, two application paths.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every plan a real churn run produces is applied twice — grouped
    /// through `apply_streamed_with` and action by action through the
    /// sequential `PlanAction::apply_streamed` reference — and both the
    /// graphs and the emitted delta streams must agree exactly after every
    /// event. Plans here exercise recolors (PatchCloud/ExtendCloud splice
    /// colors onto surviving edges) and label strips (DissolveCloud).
    #[test]
    fn grouped_plan_application_matches_sequential_reference(
        seed in any::<u64>(),
        n in 14usize..30,
        steps in 10usize..40,
    ) {
        let g0 = generators::connected_erdos_renyi(
            n,
            0.15,
            &mut StdRng::seed_from_u64(seed),
        );
        let mut planner = RepairPlanner::new(g0.nodes(), XhealConfig::new(4).with_seed(seed ^ 0xA11));
        let mut grouped_g = g0.clone();
        let mut seq_g = g0;
        let (mut grouped_sinks, grouped_rec) = recording_registry();
        let (mut seq_sinks, seq_rec) = recording_registry();
        let mut scratch = ApplyScratch::default();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut incident: Vec<(NodeId, EdgeLabels)> = Vec::new();

        for step in 0..steps {
            let nodes = grouped_g.node_vec();
            if nodes.len() <= 4 {
                break;
            }
            if rng.random_range(0..4u32) == 0 {
                // Batch deletion: the staged plan flushes prologue +
                // component stages as one grouped batch.
                let mut victims: Vec<NodeId> = Vec::new();
                for _ in 0..rng.random_range(2..=3usize) {
                    let v = nodes[rng.random_range(0..nodes.len())];
                    if !victims.contains(&v) {
                        victims.push(v);
                    }
                }
                let ctx = BatchVictim::capture(&grouped_g, &victims).unwrap();
                for bv in &ctx {
                    grouped_g.remove_node(bv.node).unwrap();
                    seq_g.remove_node(bv.node).unwrap();
                }
                let plan = planner.plan_batch_deletion(&ctx);
                plan.apply_streamed_with(&mut grouped_g, &mut grouped_sinks, &mut scratch);
                for action in plan.actions() {
                    action.apply_streamed(&mut seq_g, &mut seq_sinks);
                }
            } else {
                let v = nodes[rng.random_range(0..nodes.len())];
                let degree = grouped_g.degree(v).unwrap();
                incident.clear();
                grouped_g.remove_node_into(v, &mut incident).unwrap();
                seq_g.remove_node(v).unwrap();
                let plan = planner.plan_deletion(v, &incident, degree);
                plan.apply_streamed_with(&mut grouped_g, &mut grouped_sinks, &mut scratch);
                for action in &plan.actions {
                    action.apply_streamed(&mut seq_g, &mut seq_sinks);
                }
            }
            prop_assert!(grouped_g.validate().is_ok(), "step {step}: {:?}", grouped_g.validate());
            prop_assert!(
                fingerprint(&grouped_g) == fingerprint(&seq_g),
                "step {step}: topology fingerprints diverged"
            );
            let same = grouped_g == seq_g;
            prop_assert!(same, "step {step}: graphs diverged");
            {
                let a = grouped_rec.borrow();
                let b = seq_rec.borrow();
                prop_assert!(a.0 == b.0, "step {step}: delta streams diverged");
            }
        }
    }
}

// ----------------------------------------------------------------------
// Executor-level equivalence: the grouped path is live in every engine;
// mirrors replay its stream, and all three engines must stay
// fingerprint-identical on one schedule.
// ----------------------------------------------------------------------

/// One adversary move, always valid against the current graph: mixed
/// inserts, single deletions, and multi-victim batches.
fn next_event(engine: &dyn HealingEngine, rng: &mut StdRng, next_id: &mut u64) -> Event {
    let nodes = engine.graph().node_vec();
    let roll = rng.random_range(0..4u32);
    if nodes.len() < 8 || roll == 0 {
        let node = NodeId::new(*next_id);
        *next_id += 1;
        let mut neighbors = Vec::new();
        for _ in 0..rng.random_range(1..=2usize.min(nodes.len())) {
            let u = nodes[rng.random_range(0..nodes.len())];
            if !neighbors.contains(&u) {
                neighbors.push(u);
            }
        }
        Event::Insert { node, neighbors }
    } else if roll < 3 {
        Event::Delete {
            node: nodes[rng.random_range(0..nodes.len())],
        }
    } else {
        let mut victims: Vec<NodeId> = Vec::new();
        for _ in 0..rng.random_range(2..=3usize) {
            let v = nodes[rng.random_range(0..nodes.len())];
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        Event::DeleteBatch { nodes: victims }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// All three executors (centralized, distributed-sync,
    /// distributed-async) run one schedule through their grouped apply
    /// paths: each engine's [`DeltaMirror`] must reconstruct its graph
    /// after every event, and the three engines' fingerprints must agree
    /// with each other at every step.
    #[test]
    fn all_executors_stay_bit_identical_under_grouped_apply(
        seed in any::<u64>(),
        n in 12usize..26,
        steps in 8usize..24,
    ) {
        let g0 = generators::connected_erdos_renyi(
            n,
            0.15,
            &mut StdRng::seed_from_u64(seed),
        );
        let cfg = XhealConfig::new(4).with_seed(seed ^ 0x9E37);

        type MirroredEngine = (Box<dyn HealingEngine>, Rc<RefCell<DeltaMirror>>);
        let mut engines: Vec<MirroredEngine> = (0..3usize)
            .map(|kind| {
                let mirror = Rc::new(RefCell::new(DeltaMirror::new(&g0)));
                let sink = Box::new(Rc::clone(&mirror));
                let engine: Box<dyn HealingEngine> = match kind {
                    0 => Box::new(Xheal::builder().config(cfg.clone()).sink(sink).build(&g0)),
                    1 => Box::new(DistXheal::builder().config(cfg.clone()).sink(sink).build(&g0)),
                    _ => Box::new(
                        DistXheal::builder()
                            .config(cfg.clone())
                            .sink(sink)
                            .engine(AsyncNetwork::<Msg>::new(
                                AsyncConfig::uniform(1, 3, 29).with_jitter(1),
                            ))
                            .build(&g0),
                    ),
                };
                (engine, mirror)
            })
            .collect();

        let mut adv_rng = StdRng::seed_from_u64(seed ^ 0xFEED);
        let mut next_id = 50_000u64;
        for step in 0..steps {
            // The event depends only on the (identical) graph state.
            let event = next_event(engines[0].0.as_ref(), &mut adv_rng, &mut next_id);
            let mut prints = Vec::with_capacity(3);
            for (engine, mirror) in &mut engines {
                engine
                    .apply(&event)
                    .map_err(|e| TestCaseError::fail(format!("{}: {e}", engine.name())))?;
                let matches = engine.graph() == mirror.borrow().graph();
                prop_assert!(
                    matches,
                    "{} step {}: mirror diverged after {:?}",
                    engine.name(),
                    step,
                    event
                );
                prints.push(fingerprint(engine.graph()));
            }
            prop_assert!(
                prints.windows(2).all(|w| w[0] == w[1]),
                "step {}: executor fingerprints diverged: {:?}",
                step,
                prints
            );
        }
    }
}

/// A deterministic recolor/strip scenario flushed as one grouped batch: a
/// plan that colors existing black edges (recolor), colors fresh pairs
/// (create), then strips one of each (survive vs. die) — against the
/// hand-computed outcome and the sequential reference.
#[test]
fn recolor_and_strip_flush_matches_reference() {
    use xheal_core::PlanAction;
    use xheal_expander::EdgeDelta;
    use xheal_graph::CloudColor;

    let n = NodeId::new;
    let g0 = generators::cycle(6); // black edges (i, i+1 mod 6)
    let c = CloudColor::new(9);
    let actions = [
        // Recolor two existing black edges and create one chord.
        PlanAction::BuildCloud {
            color: c,
            kind: xheal_graph::CloudKind::Primary,
            members: vec![n(0), n(1), n(2), n(3)],
            delta: EdgeDelta {
                added: vec![(n(0), n(1)), (n(2), n(3)), (n(0), n(3))],
                removed: vec![],
            },
        },
        // Strip the color back off one recolored edge (black survives)
        // and off the chord (edge dies).
        PlanAction::PatchCloud {
            color: c,
            removed: vec![],
            delta: EdgeDelta {
                added: vec![],
                removed: vec![(n(0), n(1)), (n(0), n(3))],
            },
        },
    ];

    let mut grouped_g = g0.clone();
    let mut seq_g = g0;
    let (mut grouped_sinks, grouped_rec) = recording_registry();
    let (mut seq_sinks, seq_rec) = recording_registry();
    let plan = xheal_core::RepairPlan {
        actions: actions.to_vec(),
        report: xheal_core::DeletionReport {
            case: xheal_core::HealCase::AllBlack,
            edges_added: 3,
            edges_removed: 2,
            combined: false,
            shares: 0,
            black_degree: 0,
            degree: 0,
        },
    };
    plan.apply_streamed_with(
        &mut grouped_g,
        &mut grouped_sinks,
        &mut ApplyScratch::default(),
    );
    for action in &actions {
        action.apply_streamed(&mut seq_g, &mut seq_sinks);
    }

    assert_eq!(grouped_rec.borrow().0, seq_rec.borrow().0);
    assert_eq!(fingerprint(&grouped_g), fingerprint(&seq_g));
    assert!(grouped_g == seq_g);
    grouped_g.validate().unwrap();
    // Hand-computed: (0,1) black only again, (2,3) black + c, (0,3) gone.
    let l01 = grouped_g.edge_labels(n(0), n(1)).unwrap();
    assert!(l01.is_black() && l01.colors().is_empty());
    let l23 = grouped_g.edge_labels(n(2), n(3)).unwrap();
    assert!(l23.is_black() && l23.colors() == [c]);
    assert!(grouped_g.edge_labels(n(0), n(3)).is_none());
}
