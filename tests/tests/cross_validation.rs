//! Cross-validation: every executor behind the unified [`HealingEngine`]
//! API is driven by **one generic driver**, the distributed implementation
//! produces the identical topology to the centralized one on identical
//! schedules, and its protocol costs respect Theorem 5's shape.

use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_baselines::all_engines;
use xheal_core::{Event, HealingEngine, Outcome, Xheal, XhealConfig};
use xheal_dist::{DistXheal, Msg};
use xheal_graph::{components, generators};
use xheal_sim::{AsyncConfig, AsyncNetwork};
use xheal_workload::{bfs_rack, replay, run, BurstDeletions, RandomChurn};

/// The one generic driver: replays a recorded schedule through any engine
/// via [`HealingEngine::apply`], sanity-checking each outcome against its
/// event, and returns the outcomes for cost inspection.
fn drive<E: HealingEngine + ?Sized>(engine: &mut E, events: &[Event]) -> Vec<Outcome> {
    events
        .iter()
        .map(|event| {
            let outcome = engine
                .apply(event)
                .unwrap_or_else(|e| panic!("{}: bad event in schedule: {e}", engine.name()));
            assert_eq!(
                outcome.victims(),
                event.victims().len(),
                "{}: outcome shape mismatches event",
                engine.name()
            );
            outcome
        })
        .collect()
}

#[test]
fn distributed_equals_centralized_on_random_churn() {
    let mut rng = StdRng::seed_from_u64(17);
    let g0 = generators::connected_erdos_renyi(40, 0.08, &mut rng);
    let cfg = XhealConfig::new(6).with_seed(1234);

    let mut central = Xheal::new(&g0, cfg.clone());
    let mut adv = RandomChurn::new(0.3, 4, 12, &g0);
    let summary = run(&mut central, &mut adv, 80, 555);

    let mut dist = DistXheal::new(&g0, cfg);
    let outcomes = drive(&mut dist, &summary.events);

    assert_eq!(central.graph(), dist.graph(), "topologies diverged");
    assert_eq!(
        central.stats().combines,
        dist.planner().stats().combines,
        "plan-level stats diverged"
    );
    assert!(components::is_connected(dist.graph()));
    // The distributed outcomes carry per-event protocol costs whose
    // repair records sum to the executor's full cost log.
    let repairs: usize = outcomes
        .iter()
        .filter_map(|o| o.cost())
        .map(|c| c.repairs.len())
        .sum();
    assert_eq!(repairs, dist.costs().len());
}

#[test]
fn distributed_round_budget_is_logarithmic() {
    for n in [64usize, 256] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g0 = generators::random_regular(n, 6, &mut rng);
        let mut net = DistXheal::new(&g0, XhealConfig::new(6).with_seed(3));
        for _ in 0..n / 3 {
            let nodes = net.graph().node_vec();
            let victim = nodes[rng.random_range(0..nodes.len())];
            net.delete(victim).unwrap();
        }
        let max_rounds = net.costs().iter().map(|c| c.rounds).max().unwrap();
        let budget = 4.0 * (n as f64).log2();
        assert!(
            (max_rounds as f64) <= budget,
            "n={n}: {max_rounds} rounds exceeds 4*log2(n) = {budget}"
        );
    }
}

#[test]
fn distributed_message_cost_tracks_degree() {
    // Lemma 5: messages scale with the deleted node's degree; the measured
    // per-deletion cost divided by deg(v) stays within the kappa*log n
    // envelope on average.
    let n = 128usize;
    let kappa = 6usize;
    let mut rng = StdRng::seed_from_u64(8);
    let g0 = generators::random_regular(n, 6, &mut rng);
    let mut net = DistXheal::new(&g0, XhealConfig::new(kappa).with_seed(5));
    for _ in 0..n / 2 {
        let nodes = net.graph().node_vec();
        let victim = nodes[rng.random_range(0..nodes.len())];
        net.delete(victim).unwrap();
    }
    let costs = net.costs();
    let mean_ratio: f64 = costs
        .iter()
        .map(|c| c.messages as f64 / c.black_degree.max(1) as f64)
        .sum::<f64>()
        / costs.len() as f64;
    // Theorem 5's O(kappa log n) with an explicit constant of 2 (E7
    // measures the constant at ~1.3 on this workload).
    let budget = 2.0 * kappa as f64 * (n as f64).log2();
    assert!(
        mean_ratio <= budget,
        "mean msgs/deg = {mean_ratio} above 2*kappa*log2(n) = {budget}"
    );
}

#[test]
fn every_engine_runs_behind_the_unified_trait() {
    // Xheal, DistXheal (over either engine), and all five baselines run
    // behind the same `HealingEngine` trait object, so every experiment
    // harness accepts any of them.
    let g0 = generators::cycle(12);
    let mut engines: Vec<Box<dyn HealingEngine>> = vec![
        Box::new(Xheal::new(&g0, XhealConfig::default())),
        Box::new(DistXheal::new(&g0, XhealConfig::default())),
        Box::new(DistXheal::with_engine(
            &g0,
            XhealConfig::default(),
            AsyncNetwork::<Msg>::new(AsyncConfig::uniform(1, 3, 4)),
        )),
    ];
    engines.extend(all_engines(&g0));
    assert_eq!(engines.len(), 8, "three Xheal executors + five baselines");
    for h in &mut engines {
        let mut adv = RandomChurn::new(0.5, 2, 6, &g0);
        let summary = run(h.as_mut(), &mut adv, 20, 2);
        if h.name() != "no-heal" {
            assert!(components::is_connected(h.graph()), "{}", h.name());
        }
        assert_eq!(summary.events.len(), 20, "{}", h.name());
    }
}

#[test]
fn every_engine_is_deterministic_under_the_generic_driver() {
    // One schedule, every engine twice through the same generic driver:
    // each engine must reproduce its own topology bit-for-bit.
    let mut rng = StdRng::seed_from_u64(77);
    let g0 = generators::connected_erdos_renyi(24, 0.14, &mut rng);
    let mut schedule_src = Xheal::new(&g0, XhealConfig::new(4).with_seed(1));
    let mut adv = RandomChurn::new(0.4, 3, 8, &g0);
    let summary = run(&mut schedule_src, &mut adv, 30, 41);

    let build_all = || -> Vec<Box<dyn HealingEngine>> {
        let cfg = XhealConfig::new(4).with_seed(9);
        let mut engines: Vec<Box<dyn HealingEngine>> = vec![
            Box::new(Xheal::new(&g0, cfg.clone())),
            Box::new(DistXheal::new(&g0, cfg.clone())),
            Box::new(DistXheal::with_engine(
                &g0,
                cfg,
                AsyncNetwork::<Msg>::new(AsyncConfig::zero_latency()),
            )),
        ];
        engines.extend(all_engines(&g0));
        engines
    };
    let mut first = build_all();
    let mut second = build_all();
    for (a, b) in first.iter_mut().zip(second.iter_mut()) {
        drive(a.as_mut(), &summary.events);
        drive(b.as_mut(), &summary.events);
        assert_eq!(a.graph(), b.graph(), "{} is not deterministic", a.name());
    }
}

#[test]
fn async_zero_latency_bit_identical_three_ways() {
    // The acceptance gate of the unified API: Xheal, DistXheal over the
    // synchronous engine, and DistXheal over the zero-latency async engine
    // produce bit-identical topologies on identical schedules — including
    // batch deletions — all driven by the one generic driver.
    let mut rng = StdRng::seed_from_u64(2024);
    let g0 = generators::connected_erdos_renyi(40, 0.1, &mut rng);
    let cfg = XhealConfig::new(6).with_seed(4242);

    let mut central = Xheal::new(&g0, cfg.clone());
    let mut adv = BurstDeletions::new(3, 4, 3, 12, &g0);
    let summary = run(&mut central, &mut adv, 40, 999);
    assert!(
        summary.events.iter().any(|e| e.victims().len() > 1),
        "schedule must contain real bursts"
    );

    let mut sync_dist = DistXheal::new(&g0, cfg.clone());
    let sync_outcomes = drive(&mut sync_dist, &summary.events);
    let mut async_dist = DistXheal::with_engine(
        &g0,
        cfg,
        AsyncNetwork::<Msg>::new(AsyncConfig::zero_latency()),
    );
    let async_outcomes = drive(&mut async_dist, &summary.events);

    assert_eq!(central.graph(), sync_dist.graph(), "sync diverged");
    assert_eq!(central.graph(), async_dist.graph(), "async diverged");
    assert_eq!(central.stats(), sync_dist.planner().stats());
    assert_eq!(central.stats(), async_dist.planner().stats());
    // Zero latency means the delivery schedule is the synchronous one, so
    // even the measured per-repair costs in the outcomes coincide.
    assert_eq!(sync_dist.costs().len(), async_dist.costs().len());
    for (a, b) in sync_outcomes.iter().zip(&async_outcomes) {
        match (a.cost(), b.cost()) {
            (Some(ca), Some(cb)) => {
                assert_eq!((ca.rounds, ca.messages), (cb.rounds, cb.messages));
                assert_eq!(ca.repairs.len(), cb.repairs.len());
                for (ra, rb) in ca.repairs.iter().zip(&cb.repairs) {
                    assert_eq!(
                        (ra.repair, ra.rounds, ra.messages),
                        (rb.repair, rb.rounds, rb.messages)
                    );
                }
            }
            (None, None) => {}
            _ => panic!("cost presence diverged between engines"),
        }
    }
    assert!(components::is_connected(async_dist.graph()));
}

#[test]
fn async_latency_run_stays_connected_within_round_budget() {
    // Under seeded per-link latency and jitter, repairs take longer in wall
    // rounds but the healed topology is unchanged and recovery time stays
    // within the latency-scaled O(log n) budget.
    for n in [64usize, 256] {
        let mut rng = StdRng::seed_from_u64(n as u64 ^ 0xA51C);
        let g0 = generators::random_regular(n, 6, &mut rng);
        let lat = AsyncConfig::uniform(1, 3, 17).with_jitter(1);
        let worst = lat.worst_case_delay();
        let mut central = Xheal::new(&g0, XhealConfig::new(6).with_seed(3));
        let mut net = DistXheal::with_engine(
            &g0,
            XhealConfig::new(6).with_seed(3),
            AsyncNetwork::<Msg>::new(lat),
        );
        for _ in 0..n / 3 {
            let nodes = net.graph().node_vec();
            let victim = nodes[rng.random_range(0..nodes.len())];
            central.heal_delete(victim).unwrap();
            net.delete(victim).unwrap();
            assert!(components::is_connected(net.graph()));
        }
        assert_eq!(
            central.graph(),
            net.graph(),
            "latency must not change healing"
        );
        let max_rounds = net.costs().iter().map(|c| c.rounds).max().unwrap();
        // Every protocol phase is a constant number of message exchanges
        // except the ⌈log₂ m⌉ acknowledged splice waves, so worst-case
        // delivery delay multiplies straight into the budget.
        let budget = 4.0 * worst as f64 * (n as f64).log2();
        assert!(
            (max_rounds as f64) <= budget,
            "n={n}: {max_rounds} rounds exceeds 4*L*log2(n) = {budget}"
        );
    }
}

#[test]
fn async_burst_deletions_under_latency_converge() {
    // Bursts (batch deletions) under latency: overlapping per-component
    // protocols, messages reordered in flight, connectivity after every
    // burst, and the same topology the centralized batch healer builds.
    let mut rng = StdRng::seed_from_u64(31337);
    let g0 = generators::random_regular(96, 6, &mut rng);
    let cfg = XhealConfig::new(4).with_seed(55);
    let mut central = Xheal::new(&g0, cfg.clone());
    let mut net = DistXheal::with_engine(
        &g0,
        cfg,
        AsyncNetwork::<Msg>::new(AsyncConfig::uniform(1, 4, 9).with_jitter(2)),
    );
    for round in 0..6 {
        // A clustered rack of 4: a node and its BFS neighborhood.
        let nodes = net.graph().node_vec();
        let seed = nodes[rng.random_range(0..nodes.len())];
        let rack = bfs_rack(net.graph(), seed, 4);
        central.heal_delete_batch(&rack).unwrap();
        net.delete_batch(&rack).unwrap();
        assert!(
            components::is_connected(net.graph()),
            "round {round}: disconnected after burst {rack:?}"
        );
    }
    assert_eq!(central.graph(), net.graph(), "batch healing diverged");
    let log2n = (96f64).log2();
    let worst = 4 + 2; // max base latency + jitter
    for c in net.costs() {
        assert!(
            (c.rounds as f64) <= 4.0 * worst as f64 * log2n,
            "repair {} blew the latency-scaled O(log n) budget: {} rounds",
            c.repair,
            c.rounds
        );
    }
}

#[test]
fn replay_equals_drive() {
    // `xheal_workload::replay` and the local generic driver are the same
    // loop; both must land on the same topology.
    let mut rng = StdRng::seed_from_u64(5150);
    let g0 = generators::connected_erdos_renyi(20, 0.15, &mut rng);
    let cfg = XhealConfig::new(4).with_seed(2);
    let mut src = Xheal::new(&g0, cfg.clone());
    let mut adv = RandomChurn::new(0.4, 3, 6, &g0);
    let summary = run(&mut src, &mut adv, 25, 61);

    let mut via_replay = DistXheal::new(&g0, cfg.clone());
    replay(&mut via_replay, &summary.events);
    let mut via_drive = DistXheal::new(&g0, cfg);
    drive(&mut via_drive, &summary.events);
    assert_eq!(via_replay.graph(), via_drive.graph());
    assert_eq!(src.graph(), via_drive.graph());
}
