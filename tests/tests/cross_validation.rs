//! Cross-validation: the distributed implementation produces the identical
//! topology to the centralized one on identical schedules, and its protocol
//! costs respect Theorem 5's shape.

use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::{Healer, Xheal, XhealConfig};
use xheal_dist::DistXheal;
use xheal_graph::{components, generators};
use xheal_workload::{replay, run, RandomChurn};

#[test]
fn distributed_equals_centralized_on_random_churn() {
    let mut rng = StdRng::seed_from_u64(17);
    let g0 = generators::connected_erdos_renyi(40, 0.08, &mut rng);
    let cfg = XhealConfig::new(6).with_seed(1234);

    let mut central = Xheal::new(&g0, cfg.clone());
    let mut adv = RandomChurn::new(0.3, 4, 12, &g0);
    let summary = run(&mut central, &mut adv, 80, 555);

    let mut dist = DistXheal::new(&g0, cfg);
    replay(&mut dist, &summary.events);

    assert_eq!(central.graph(), dist.graph(), "topologies diverged");
    assert_eq!(
        central.stats().combines,
        dist.planner().stats().combines,
        "plan-level stats diverged"
    );
    assert!(components::is_connected(dist.graph()));
}

#[test]
fn distributed_round_budget_is_logarithmic() {
    for n in [64usize, 256] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g0 = generators::random_regular(n, 6, &mut rng);
        let mut net = DistXheal::new(&g0, XhealConfig::new(6).with_seed(3));
        for _ in 0..n / 3 {
            let nodes = net.graph().node_vec();
            let victim = nodes[rng.random_range(0..nodes.len())];
            net.delete(victim).unwrap();
        }
        let max_rounds = net.costs().iter().map(|c| c.rounds).max().unwrap();
        let budget = 4.0 * (n as f64).log2();
        assert!(
            (max_rounds as f64) <= budget,
            "n={n}: {max_rounds} rounds exceeds 4*log2(n) = {budget}"
        );
    }
}

#[test]
fn distributed_message_cost_tracks_degree() {
    // Lemma 5: messages scale with the deleted node's degree; the measured
    // per-deletion cost divided by deg(v) stays within the kappa*log n
    // envelope on average.
    let n = 128usize;
    let kappa = 6usize;
    let mut rng = StdRng::seed_from_u64(8);
    let g0 = generators::random_regular(n, 6, &mut rng);
    let mut net = DistXheal::new(&g0, XhealConfig::new(kappa).with_seed(5));
    for _ in 0..n / 2 {
        let nodes = net.graph().node_vec();
        let victim = nodes[rng.random_range(0..nodes.len())];
        net.delete(victim).unwrap();
    }
    let costs = net.costs();
    let mean_ratio: f64 = costs
        .iter()
        .map(|c| c.messages as f64 / c.black_degree.max(1) as f64)
        .sum::<f64>()
        / costs.len() as f64;
    // Theorem 5's O(kappa log n) with an explicit constant of 2 (E7
    // measures the constant at ~1.3 on this workload).
    let budget = 2.0 * kappa as f64 * (n as f64).log2();
    assert!(
        mean_ratio <= budget,
        "mean msgs/deg = {mean_ratio} above 2*kappa*log2(n) = {budget}"
    );
}

#[test]
fn healer_trait_object_interoperability() {
    // DistXheal and Xheal both run behind the same trait object, so every
    // experiment harness accepts either.
    let g0 = generators::cycle(12);
    let mut healers: Vec<Box<dyn Healer>> = vec![
        Box::new(Xheal::new(&g0, XhealConfig::default())),
        Box::new(DistXheal::new(&g0, XhealConfig::default())),
    ];
    for h in &mut healers {
        let mut adv = RandomChurn::new(0.5, 2, 6, &g0);
        let _ = run(h.as_mut(), &mut adv, 20, 2);
        assert!(components::is_connected(h.graph()), "{}", h.name());
    }
}
