//! Cross-crate property tests: arbitrary adversarial schedules against the
//! full stack (core + dist + metrics + spectral).

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::{invariants, Xheal, XhealConfig};
use xheal_dist::DistXheal;
use xheal_graph::{components, generators, NodeId};
use xheal_workload::{replay, run, RandomChurn};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The distributed and centralized implementations stay bit-identical on
    /// arbitrary random-churn schedules.
    #[test]
    fn dist_central_equivalence(
        seed in any::<u64>(),
        n in 10usize..30,
        steps in 5usize..40,
        p_insert in 0.1f64..0.7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g0 = generators::connected_erdos_renyi(n, 0.15, &mut rng);
        let cfg = XhealConfig::new(4).with_seed(seed ^ 1);

        let mut central = Xheal::new(&g0, cfg.clone());
        let mut adv = RandomChurn::new(p_insert, 3, 4, &g0);
        let summary = run(&mut central, &mut adv, steps, seed ^ 2);

        let mut dist = DistXheal::new(&g0, cfg);
        replay(&mut dist, &summary.events);
        prop_assert_eq!(central.graph(), dist.graph());
    }

    /// Batch deletion preserves connectivity and invariants for arbitrary
    /// victim sets (including adjacent victims).
    #[test]
    fn batch_deletion_safe(
        seed in any::<u64>(),
        n in 12usize..36,
        batch in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g0 = generators::connected_erdos_renyi(n, 0.14, &mut rng);
        let mut x = Xheal::new(&g0, XhealConfig::new(4).with_seed(seed ^ 3));
        // A couple of sequential deletions first so clouds exist.
        for _ in 0..3 {
            let nodes = x.graph().node_vec();
            let victim = nodes[rng.random_range(0..nodes.len())];
            x.heal_delete(victim).unwrap();
        }
        let nodes = x.graph().node_vec();
        let mut victims: Vec<NodeId> = Vec::new();
        for _ in 0..batch.min(nodes.len().saturating_sub(4)) {
            let v = nodes[rng.random_range(0..nodes.len())];
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        if victims.is_empty() {
            return Ok(());
        }
        x.heal_delete_batch(&victims).unwrap();
        prop_assert!(components::is_connected(x.graph()));
        invariants::check_invariants(&x).map_err(|e| {
            TestCaseError::fail(format!("invariants: {e}"))
        })?;
    }

    /// Distributed per-deletion costs are always accounted (one entry per
    /// deletion, rounds >= messages > 0 for non-trivial repairs).
    #[test]
    fn dist_costs_accounted(seed in any::<u64>(), n in 10usize..24) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g0 = generators::connected_erdos_renyi(n, 0.2, &mut rng);
        let mut net = DistXheal::new(&g0, XhealConfig::new(4).with_seed(seed));
        let deletions = n / 2;
        for _ in 0..deletions {
            let nodes = net.graph().node_vec();
            let victim = nodes[rng.random_range(0..nodes.len())];
            net.delete(victim).unwrap();
        }
        prop_assert_eq!(net.costs().len(), deletions);
        for c in net.costs() {
            if c.black_degree >= 2 {
                prop_assert!(c.messages > 0, "non-trivial repair sent no messages");
                prop_assert!(c.rounds > 0);
            }
        }
    }

    /// Healed graphs never contain stale cloud colors (label/registry
    /// consistency after arbitrary schedules) — exercised through the
    /// Healer trait like the experiment harness does.
    #[test]
    fn no_stale_labels_via_trait(seed in any::<u64>(), steps in 5usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g0 = generators::connected_erdos_renyi(16, 0.2, &mut rng);
        let mut healer = Xheal::new(&g0, XhealConfig::new(4).with_seed(seed));
        let mut adv = RandomChurn::new(0.4, 3, 4, &g0);
        let _ = run(&mut healer, &mut adv, steps, seed ^ 9);
        invariants::check_invariants(&healer).map_err(|e| {
            TestCaseError::fail(format!("invariants: {e}"))
        })?;
        prop_assert!(healer.graph().validate().is_ok());
    }
}
