//! Cross-crate arena integration: DEX invariants under arbitrary churn
//! (property tests) and the ten-engine arena harness end to end, including
//! a monitor-backed scorer so every engine's delta stream is checked in
//! debug mode.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use xheal_core::{DeltaMirror, Event, HealingEngine, Outcome};
use xheal_dex::{Dex, DexConfig};
use xheal_graph::{components, generators, Graph};
use xheal_monitor::{Monitor, MonitorConfig, MonitorHook};
use xheal_workload::{
    replay, run, run_arena, run_observed, standard_registry, ArenaQuality, ArenaSchedule,
    ArenaScorer, BurstDeletions, HealthNote, NoScorer, RandomChurn, RunObserver, RunSummary,
    Severity,
};

/// Observer asserting DEX's hard invariants after every applied event:
/// the constant-degree cap and connectivity.
struct DexInvariantCheck {
    bound: usize,
}

impl RunObserver for DexInvariantCheck {
    fn on_event(&mut self, step: usize, _: &Event, _: &Outcome, graph: &Graph) {
        for v in graph.node_vec() {
            let d = graph.degree(v).expect("live node");
            assert!(
                d <= self.bound,
                "step {step}: degree {d} of {v} exceeds {}",
                self.bound
            );
        }
        assert!(
            graph.node_count() == 0 || components::is_connected(graph),
            "step {step}: projection disconnected"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mixed insert/delete churn never breaks DEX's constant-degree bound
    /// or connectivity — checked after *every* event, not just at the end.
    #[test]
    fn dex_bound_and_connectivity_under_churn(
        seed in any::<u64>(),
        n in 8usize..24,
        steps in 10usize..40,
        p_insert in 0.2f64..0.7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g0 = generators::connected_erdos_renyi(n, 0.2, &mut rng);
        let mut dex = Dex::new(&g0, DexConfig { seed: seed ^ 1, ..DexConfig::default() });
        let bound = dex.degree_bound();
        let mut adv = RandomChurn::new(p_insert, 2, 4, &g0);
        let mut check = DexInvariantCheck { bound };
        run_observed(&mut dex, &mut adv, steps, seed ^ 2, &mut check);
        dex.assert_invariants();
    }

    /// Clustered `DeleteBatch` racks (adjacent victims, whole-rack kills)
    /// respect the same invariants.
    #[test]
    fn dex_survives_batch_racks(
        seed in any::<u64>(),
        n in 14usize..30,
        steps in 8usize..24,
    ) {
        let g0 = generators::ring_with_chords(n);
        let mut dex = Dex::new(&g0, DexConfig { seed: seed ^ 5, ..DexConfig::default() });
        let bound = dex.degree_bound();
        let mut adv = BurstDeletions::new(3, 3, 3, 6, &g0);
        let mut check = DexInvariantCheck { bound };
        run_observed(&mut dex, &mut adv, steps, seed ^ 6, &mut check);
        dex.assert_invariants();
    }

    /// The same event tape replayed onto fresh DEX instances lands on
    /// bit-identical graphs: the engine is deterministic in (seed, tape).
    #[test]
    fn dex_is_deterministic_across_reruns(
        seed in any::<u64>(),
        n in 8usize..20,
        steps in 8usize..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g0 = generators::connected_erdos_renyi(n, 0.2, &mut rng);
        let cfg = DexConfig { seed: seed ^ 9, ..DexConfig::default() };
        let mut live = Dex::new(&g0, cfg);
        let mut adv = RandomChurn::new(0.5, 2, 4, &g0);
        let summary = run(&mut live, &mut adv, steps, seed ^ 10);

        let mut a = Dex::new(&g0, cfg);
        let mut b = Dex::new(&g0, cfg);
        replay(&mut a, &summary.events);
        replay(&mut b, &summary.events);
        prop_assert_eq!(a.graph(), b.graph());
        prop_assert_eq!(a.graph(), live.graph());
        prop_assert_eq!(
            a.graph().edge_fingerprint(),
            live.graph().edge_fingerprint()
        );
    }

    /// A `DeltaMirror` fed from DEX's subscription stream reconstructs the
    /// engine graph exactly under mixed churn — the delta stream is
    /// complete and minimal.
    #[test]
    fn dex_delta_stream_rebuilds_the_graph(
        seed in any::<u64>(),
        n in 8usize..20,
        steps in 8usize..30,
        p_insert in 0.2f64..0.7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g0 = generators::connected_erdos_renyi(n, 0.2, &mut rng);
        let mut dex = Dex::new(&g0, DexConfig { seed: seed ^ 3, ..DexConfig::default() });
        // Mirror the *post-construction* graph: DEX rebuilds its topology,
        // so the subscription baseline is its bootstrap projection.
        let mirror = Rc::new(RefCell::new(DeltaMirror::new(dex.graph())));
        dex.subscribe(Box::new(Rc::clone(&mirror)));
        let mut adv = RandomChurn::new(p_insert, 2, 4, &g0);
        run(&mut dex, &mut adv, steps, seed ^ 4);
        let rebuilt = mirror.borrow();
        prop_assert_eq!(rebuilt.graph(), dex.graph());
    }
}

/// Monitor-backed scorer (mirrors the arena bench bin's): exercises every
/// engine's delta stream against the monitor's drift `debug_assert`s.
struct MonitorScorer {
    monitor: Rc<RefCell<Monitor>>,
    hook: MonitorHook,
}

impl MonitorScorer {
    fn new(initial: &Graph) -> Self {
        let config = MonitorConfig {
            track_lambda3: true,
            ..MonitorConfig::default()
        };
        let monitor = Rc::new(RefCell::new(Monitor::new(initial, config)));
        let hook = MonitorHook::new(Rc::clone(&monitor), 8);
        MonitorScorer { monitor, hook }
    }
}

impl RunObserver for MonitorScorer {
    fn on_event(&mut self, step: usize, event: &Event, outcome: &Outcome, graph: &Graph) {
        self.hook.on_event(step, event, outcome, graph);
    }

    fn drain_notes(&mut self) -> Vec<HealthNote> {
        self.hook.drain_notes()
    }
}

impl ArenaScorer for MonitorScorer {
    fn attach(&mut self, engine: &mut dyn HealingEngine) {
        engine.subscribe(Box::new(Rc::clone(&self.monitor)));
    }

    fn finish(&mut self, graph: &Graph, summary: &RunSummary) -> ArenaQuality {
        let mut m = self.monitor.borrow_mut();
        assert_eq!(
            (m.node_count(), m.edge_count()),
            (graph.node_count(), graph.edge_count()),
            "monitor drifted from the engine graph"
        );
        let report = m.checkpoint();
        ArenaQuality {
            max_degree: report.max_degree,
            degree_increase: Some(report.degree_increase),
            stretch: report.stretch,
            expansion: report.expansion,
            spectral_gap: Some(report.spectral_gap.lambda),
            lambda3: report.lambda3,
            components: report.components,
            warn_notes: summary
                .health
                .iter()
                .filter(|h| h.severity == Severity::Warning)
                .count(),
            critical_notes: summary
                .health
                .iter()
                .filter(|h| h.severity == Severity::Critical)
                .count(),
        }
    }
}

/// The full ten-engine arena with the dependency-free scorer: every cell
/// present, every engine driven through every schedule.
#[test]
fn arena_covers_ten_engines_by_three_schedules() {
    let g0 = generators::ring_with_chords(28);
    let reg = standard_registry(4);
    let matrix = run_arena(&reg, &ArenaSchedule::standard(15), &g0, 11, |_, _, _| {
        NoScorer
    });
    assert!(matrix.is_complete());
    assert_eq!(matrix.cells.len(), 30);
    assert_eq!(matrix.engines().len(), 10);
    assert_eq!(matrix.schedules().len(), 3);
}

/// The monitor-scored arena in debug mode: every engine's delta stream
/// must keep the monitor's incremental CSR exactly in sync (the monitor
/// `debug_assert`s drift per event), and the scored qualities must be
/// sane: λ₂/λ₃ ordered, components ≥ 1, degree caps where promised.
#[test]
fn monitor_scored_arena_is_consistent_for_every_engine() {
    let g0 = generators::ring_with_chords(26);
    let reg = standard_registry(4);
    let matrix = run_arena(&reg, &ArenaSchedule::standard(12), &g0, 23, |_, _, g| {
        MonitorScorer::new(g)
    });
    assert!(matrix.is_complete());
    let dex_bound = DexConfig::default().degree * DexConfig::default().max_load;
    for cell in &matrix.cells {
        let q = &cell.quality;
        assert!(q.components >= 1, "{}/{}", cell.engine, cell.schedule);
        let gap = q.spectral_gap.expect("scored");
        if let Some(l3) = q.lambda3 {
            assert!(
                l3 >= gap - 1e-9,
                "{}/{}: lambda3 {l3} below lambda2 {gap}",
                cell.engine,
                cell.schedule
            );
        }
        if cell.engine == "dex" {
            assert!(q.max_degree <= dex_bound);
        }
    }
}
