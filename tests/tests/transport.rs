//! Transport cross-validation on the calendar-queue substrate.
//!
//! PR 8 rewrote `xheal-sim`'s internals (calendar-wheel scheduling, flat
//! mailbox arena); the in-crate property tests pin the new scheduler
//! bit-identical to the old heap against a `#[cfg(test)]` oracle. This
//! suite closes the loop one level up: all four Xheal executors —
//! sequential `Xheal`, component-parallel `ParallelXheal`, and `DistXheal`
//! over both the synchronous and the asynchronous engine — replay
//! identical schedules over the new transport and land on bit-identical
//! topologies, and the engines' per-kind send tally conserves messages
//! (sent = delivered + dropped once the protocol quiesces).

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use xheal_core::{HealingEngine, ParallelXheal, Xheal, XhealConfig};
use xheal_dist::{DistXheal, Msg};
use xheal_graph::{components, generators};
use xheal_sim::{AsyncConfig, AsyncNetwork};
use xheal_workload::{run, RandomChurn};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One churn schedule, four executors, one topology. The asynchronous
    /// executor runs twice: at zero latency (the synchronous delivery
    /// schedule) and under seeded latency + jitter (reordered in-flight
    /// traffic) — healing decisions must not depend on delivery timing.
    #[test]
    fn four_executors_agree_on_the_new_transport(
        seed in any::<u64>(),
        n in 20usize..44,
        steps in 15usize..40,
    ) {
        let g0 = generators::connected_erdos_renyi(
            n,
            0.12,
            &mut StdRng::seed_from_u64(seed),
        );
        let cfg = XhealConfig::new(4).with_seed(seed ^ 0xBEEF);
        let mut central = Xheal::new(&g0, cfg.clone());
        let mut adv = RandomChurn::new(0.35, 3, 8, &g0);
        let summary = run(&mut central, &mut adv, steps, seed ^ 0x77);

        let mut executors: Vec<(&str, Box<dyn HealingEngine>)> = vec![
            ("parallel", Box::new(ParallelXheal::new(&g0, cfg.clone(), 4))),
            ("dist-sync", Box::new(DistXheal::new(&g0, cfg.clone()))),
            (
                "dist-async-zero",
                Box::new(DistXheal::with_engine(
                    &g0,
                    cfg.clone(),
                    AsyncNetwork::<Msg>::new(AsyncConfig::zero_latency()),
                )),
            ),
            (
                "dist-async-latency",
                Box::new(DistXheal::with_engine(
                    &g0,
                    cfg.clone(),
                    AsyncNetwork::<Msg>::new(
                        AsyncConfig::uniform(1, 4, seed).with_jitter(2),
                    ),
                )),
            ),
        ];
        for (name, ex) in &mut executors {
            for event in &summary.events {
                ex.apply(event)
                    .map_err(|e| TestCaseError::fail(format!("{name}: {e}")))?;
            }
            prop_assert!(
                central.graph() == ex.graph(),
                "{} diverged from the sequential executor",
                name
            );
            prop_assert!(
                components::is_connected(ex.graph()),
                "{} left the overlay disconnected",
                name
            );
        }
    }
}

#[test]
fn kind_tally_conserves_sends_across_engines() {
    // Every sent protocol message is tallied under exactly one `Msg` kind,
    // and once a repair quiesces each send was either delivered or dropped
    // (a recipient deleted mid-protocol) — the breakdown must sum to the
    // engine's delivered + dropped totals, on both engines.
    let mut rng = StdRng::seed_from_u64(0x7A11);
    let g0 = generators::random_regular(80, 6, &mut rng);
    let cfg = XhealConfig::new(4).with_seed(11);
    let mut sync_net = DistXheal::new(&g0, cfg.clone());
    let mut async_net = DistXheal::with_engine(
        &g0,
        cfg,
        AsyncNetwork::<Msg>::new(AsyncConfig::uniform(1, 3, 5).with_jitter(1)),
    );
    for _ in 0..25 {
        let nodes = sync_net.graph().node_vec();
        let victim = nodes[rand::Rng::random_range(&mut rng, 0..nodes.len())];
        sync_net.delete(victim).unwrap();
        async_net.delete(victim).unwrap();
    }
    for (name, breakdown, counters) in [
        ("sync", sync_net.message_breakdown(), sync_net.counters()),
        ("async", async_net.message_breakdown(), async_net.counters()),
    ] {
        let (labels, counts) = breakdown;
        assert_eq!(labels, Msg::KIND_LABELS, "{name}: classifier labels");
        let sent: u64 = counts.iter().sum();
        assert!(sent > 0, "{name}: protocol ran");
        assert_eq!(
            sent,
            counters.messages + counters.dropped,
            "{name}: per-kind tally does not conserve sends"
        );
        // Probes and grants pair up one-to-one unless a probe's target (or
        // a grant's coordinator) died mid-repair.
        let by_label = |l: &str| counts[labels.iter().position(|&x| x == l).unwrap()];
        assert!(
            by_label("grant") <= by_label("probe"),
            "{name}: grants outnumber probes"
        );
        assert_eq!(
            by_label("splice"),
            by_label("splice_ack"),
            "{name}: unacknowledged splice waves"
        );
    }
    assert_eq!(sync_net.graph(), async_net.graph());
}
